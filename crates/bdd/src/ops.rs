//! Boolean operations: ITE and everything derived from it.
//!
//! Every recursive operation exists in two forms: the classic infallible
//! form (`ite`, `and`, …) and a checked `try_*` form returning
//! [`BudgetExceeded`] when the armed [`crate::Budget`] runs out. Both
//! share one recursion, so with no budget armed they are byte-identical;
//! the infallible form panics if a limit trips while it runs. All
//! recursions also carry a depth guard that converts a would-be stack
//! overflow on pathologically deep BDDs into [`BudgetExceeded`].

use crate::budget::BudgetExceeded;
use crate::cache::Op;
use crate::edge::{Edge, Var};
use crate::manager::{Bdd, BUDGET_PANIC, MAX_REC_DEPTH};

impl Bdd {
    /// If-then-else: `ite(f, g, h) = f·g + ¬f·h`.
    ///
    /// All binary operations are derived from this; results are memoised in
    /// the computed table.
    ///
    /// # Example
    ///
    /// ```
    /// use bddmin_bdd::{Bdd, Var};
    /// let mut bdd = Bdd::new(3);
    /// let (a, b, c) = (bdd.var(Var(0)), bdd.var(Var(1)), bdd.var(Var(2)));
    /// let mux = bdd.ite(a, b, c);
    /// let manual = {
    ///     let t = bdd.and(a, b);
    ///     let na = bdd.not(a);
    ///     let e = bdd.and(na, c);
    ///     bdd.or(t, e)
    /// };
    /// assert_eq!(mux, manual);
    /// ```
    pub fn ite(&mut self, f: Edge, g: Edge, h: Edge) -> Edge {
        self.try_ite(f, g, h).expect(BUDGET_PANIC)
    }

    /// Checked [`Bdd::ite`]: aborts cleanly with [`BudgetExceeded`] when
    /// the armed budget runs out. The caches never record aborted work,
    /// so a failed call leaves the manager fully consistent.
    pub fn try_ite(&mut self, f: Edge, g: Edge, h: Edge) -> Result<Edge, BudgetExceeded> {
        self.begin_op();
        match self.ite_rec(f, g, h, 0) {
            Ok(r) => Ok(self.end_op(r)),
            Err(e) => {
                self.abort_op();
                Err(e)
            }
        }
    }

    pub(crate) fn ite_rec(
        &mut self,
        f: Edge,
        g: Edge,
        h: Edge,
        depth: u32,
    ) -> Result<Edge, BudgetExceeded> {
        self.charge_step()?;
        if depth > MAX_REC_DEPTH {
            return Err(BudgetExceeded::DEPTH);
        }
        // Terminal cases.
        if f.is_one() {
            return Ok(g);
        }
        if f.is_zero() {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g.is_one() && h.is_zero() {
            return Ok(f);
        }
        if g.is_zero() && h.is_one() {
            return Ok(f.complement());
        }
        // Reduce using f where g/h coincide with f or !f.
        let (mut f, mut g, mut h) = (f, g, h);
        if g == f {
            g = Edge::ONE;
        } else if g == f.complement() {
            g = Edge::ZERO;
        }
        if h == f {
            h = Edge::ZERO;
        } else if h == f.complement() {
            h = Edge::ONE;
        }
        if g == h {
            return Ok(g);
        }
        if g.is_one() && h.is_zero() {
            return Ok(f);
        }
        if g.is_zero() && h.is_one() {
            return Ok(f.complement());
        }
        // Canonical triple: standard symmetry rewrites so equivalent calls
        // share cache entries (ite(f,1,h) = ite(h,1,f), etc.).
        if g.is_one() && self.order_before(h, f) {
            std::mem::swap(&mut f, &mut h);
        } else if h.is_zero() && self.order_before(g, f) {
            std::mem::swap(&mut f, &mut g);
        } else if g.is_zero() && self.order_before(h, f) {
            let (nf, nh) = (h.complement(), f.complement());
            f = nf;
            h = nh;
        } else if h.is_one() && self.order_before(g, f) {
            let (nf, ng) = (g.complement(), f.complement());
            f = nf;
            g = ng;
        } else if g == h.complement() && self.order_before(g, f) {
            // ite(f, g, !g) = ite(g, f, !f)
            std::mem::swap(&mut f, &mut g);
            h = g.complement();
        }
        // Complement normalisation: f regular, g regular.
        if f.is_complemented() {
            std::mem::swap(&mut g, &mut h);
            f = f.complement();
        }
        let negate = g.is_complemented();
        if negate {
            g = g.complement();
            h = h.complement();
        }
        if let Some(r) = self.cache.get(Op::Ite, f, g, h) {
            return Ok(r.complement_if(negate));
        }
        let top = self.level(f).min(self.level(g)).min(self.level(h));
        let (f1, f0) = self.cof_at(f, top);
        let (g1, g0) = self.cof_at(g, top);
        let (h1, h0) = self.cof_at(h, top);
        let t = self.ite_rec(f1, g1, h1, depth + 1)?;
        let e = self.ite_rec(f0, g0, h0, depth + 1)?;
        let r = self.mk_checked(top, t, e)?;
        self.cache.insert(Op::Ite, f, g, h, r);
        Ok(r.complement_if(negate))
    }

    /// True if `a` should precede `b` in canonical-triple ordering
    /// (top level first, then raw node index as a tiebreak).
    fn order_before(&self, a: Edge, b: Edge) -> bool {
        let (la, lb) = (self.level(a), self.level(b));
        la < lb || (la == lb && a.node() < b.node())
    }

    /// Conjunction `f · g`.
    pub fn and(&mut self, f: Edge, g: Edge) -> Edge {
        self.ite(f, g, Edge::ZERO)
    }

    /// Checked [`Bdd::and`].
    pub fn try_and(&mut self, f: Edge, g: Edge) -> Result<Edge, BudgetExceeded> {
        self.try_ite(f, g, Edge::ZERO)
    }

    /// Disjunction `f + g`.
    pub fn or(&mut self, f: Edge, g: Edge) -> Edge {
        self.ite(f, Edge::ONE, g)
    }

    /// Checked [`Bdd::or`].
    pub fn try_or(&mut self, f: Edge, g: Edge) -> Result<Edge, BudgetExceeded> {
        self.try_ite(f, Edge::ONE, g)
    }

    /// Exclusive or `f ⊕ g`.
    pub fn xor(&mut self, f: Edge, g: Edge) -> Edge {
        self.ite(f, g.complement(), g)
    }

    /// Checked [`Bdd::xor`].
    pub fn try_xor(&mut self, f: Edge, g: Edge) -> Result<Edge, BudgetExceeded> {
        self.try_ite(f, g.complement(), g)
    }

    /// Equivalence `f ≡ g` (xnor).
    pub fn xnor(&mut self, f: Edge, g: Edge) -> Edge {
        self.ite(f, g, g.complement())
    }

    /// Implication `f ⇒ g` as a function.
    pub fn implies(&mut self, f: Edge, g: Edge) -> Edge {
        self.ite(f, g, Edge::ONE)
    }

    /// Difference `f · ¬g`.
    pub fn diff(&mut self, f: Edge, g: Edge) -> Edge {
        self.ite(f, g.complement(), Edge::ZERO)
    }

    /// Nand `¬(f·g)`.
    pub fn nand(&mut self, f: Edge, g: Edge) -> Edge {
        self.and(f, g).complement()
    }

    /// Nor `¬(f+g)`.
    pub fn nor(&mut self, f: Edge, g: Edge) -> Edge {
        self.or(f, g).complement()
    }

    /// Conjunction of many functions (`ONE` for an empty iterator).
    pub fn and_many<I: IntoIterator<Item = Edge>>(&mut self, edges: I) -> Edge {
        edges
            .into_iter()
            .fold(Edge::ONE, |acc, e| self.and(acc, e))
    }

    /// Disjunction of many functions (`ZERO` for an empty iterator).
    pub fn or_many<I: IntoIterator<Item = Edge>>(&mut self, edges: I) -> Edge {
        edges
            .into_iter()
            .fold(Edge::ZERO, |acc, e| self.or(acc, e))
    }

    /// Decision check: does `f ≤ g` (i.e. `f ⇒ g`) hold for all inputs?
    ///
    /// O(|f|·|g|) containment test; does not build the implication BDD.
    pub fn implies_holds(&mut self, f: Edge, g: Edge) -> bool {
        // f ≤ g  ⟺  f·¬g = 0.
        self.and(f, g.complement()).is_zero()
    }

    /// Checked [`Bdd::implies_holds`].
    pub fn try_implies_holds(&mut self, f: Edge, g: Edge) -> Result<bool, BudgetExceeded> {
        Ok(self.try_and(f, g.complement())?.is_zero())
    }

    /// The Shannon cofactor of `f` by the literal `(var = value)`.
    ///
    /// # Example
    ///
    /// ```
    /// use bddmin_bdd::{Bdd, Var};
    /// let mut bdd = Bdd::new(2);
    /// let (a, b) = (bdd.var(Var(0)), bdd.var(Var(1)));
    /// let f = bdd.and(a, b);
    /// assert_eq!(bdd.cofactor(f, Var(0), true), b);
    /// assert!(bdd.cofactor(f, Var(0), false).is_zero());
    /// ```
    pub fn cofactor(&mut self, f: Edge, var: Var, value: bool) -> Edge {
        self.try_cofactor(f, var, value).expect(BUDGET_PANIC)
    }

    /// Checked [`Bdd::cofactor`].
    pub fn try_cofactor(
        &mut self,
        f: Edge,
        var: Var,
        value: bool,
    ) -> Result<Edge, BudgetExceeded> {
        self.begin_op();
        let value = if value { Edge::ONE } else { Edge::ZERO };
        // The recursion runs in level space: convert the variable identity
        // to its position in the current order once, up front.
        let level = self.level_of_var(var);
        match self.cofactor_rec(f, level, value, 0) {
            Ok(r) => Ok(self.end_op(r)),
            Err(e) => {
                self.abort_op();
                Err(e)
            }
        }
    }

    /// `level` is a position in the current order, not a variable identity
    /// (cache keys are level-based too; every reorder clears the caches, so
    /// entries never outlive the order they were computed under).
    fn cofactor_rec(
        &mut self,
        f: Edge,
        level: Var,
        value: Edge,
        depth: u32,
    ) -> Result<Edge, BudgetExceeded> {
        self.charge_step()?;
        if depth > MAX_REC_DEPTH {
            return Err(BudgetExceeded::DEPTH);
        }
        let top = self.level(f);
        if top > level {
            // f does not depend on the variable at `level` (ordered BDD).
            return Ok(f);
        }
        if let Some(r) = self.cache.get(Op::Compose(level.0), f, value, Edge::ONE) {
            return Ok(r);
        }
        let (f1, f0) = self.cof_at(f, top);
        let r = if top == level {
            if value.is_one() {
                f1
            } else {
                f0
            }
        } else {
            let t = self.cofactor_rec(f1, level, value, depth + 1)?;
            let e = self.cofactor_rec(f0, level, value, depth + 1)?;
            self.mk_checked(top, t, e)?
        };
        self.cache.insert(Op::Compose(level.0), f, value, Edge::ONE, r);
        Ok(r)
    }

    /// Restricts `f` by a positive/negative literal cube: the generalized
    /// Shannon cofactor `f_p` for a cube `p` given as literal list.
    ///
    /// # Example
    ///
    /// ```
    /// use bddmin_bdd::{Bdd, Var};
    /// let mut bdd = Bdd::new(3);
    /// let (a, b) = (bdd.var(Var(0)), bdd.var(Var(1)));
    /// let f = bdd.xor(a, b);
    /// let fa = bdd.cofactor_cube(f, &[(Var(0), true)]);
    /// assert_eq!(fa, bdd.not(b));
    /// ```
    pub fn cofactor_cube(&mut self, f: Edge, literals: &[(Var, bool)]) -> Edge {
        let mut r = f;
        for &(v, val) in literals {
            r = self.cofactor(r, v, val);
        }
        r
    }

    /// Existential quantification `∃ vars . f`, where `vars` is a **positive
    /// cube** (as built by [`Bdd::cube_of_vars`]).
    ///
    /// # Panics
    ///
    /// Panics if `vars` is not a positive cube.
    pub fn exists(&mut self, f: Edge, vars: Edge) -> Edge {
        self.assert_positive_cube(vars);
        self.try_exists(f, vars).expect(BUDGET_PANIC)
    }

    /// Checked [`Bdd::exists`]. A malformed `vars` (not a positive cube)
    /// is reported as [`BudgetExceeded::INTERNAL`] instead of panicking,
    /// so long-running services degrade to a structured error line.
    pub fn try_exists(&mut self, f: Edge, vars: Edge) -> Result<Edge, BudgetExceeded> {
        self.check_positive_cube(vars)?;
        self.begin_op();
        match self.exists_rec(f, vars, 0) {
            Ok(r) => Ok(self.end_op(r)),
            Err(e) => {
                self.abort_op();
                Err(e)
            }
        }
    }

    fn exists_rec(&mut self, f: Edge, mut cube: Edge, depth: u32) -> Result<Edge, BudgetExceeded> {
        self.charge_step()?;
        if depth > MAX_REC_DEPTH {
            return Err(BudgetExceeded::DEPTH);
        }
        // Skip quantified variables above f's level.
        while !cube.is_constant() && self.level(cube) < self.level(f) {
            cube = self.node(cube).hi.complement_if(cube.is_complemented());
        }
        if cube.is_constant() || f.is_constant() {
            return Ok(f);
        }
        if let Some(r) = self.cache.get(Op::Exists, f, cube, Edge::ONE) {
            return Ok(r);
        }
        let top = self.level(f);
        let (f1, f0) = self.cof_at(f, top);
        let r = if self.level(cube) == top {
            let next = self.node(cube).hi.complement_if(cube.is_complemented());
            let t = self.exists_rec(f1, next, depth + 1)?;
            let e = self.exists_rec(f0, next, depth + 1)?;
            self.ite_rec(t, Edge::ONE, e, depth + 1)?
        } else {
            let t = self.exists_rec(f1, cube, depth + 1)?;
            let e = self.exists_rec(f0, cube, depth + 1)?;
            self.mk_checked(top, t, e)?
        };
        self.cache.insert(Op::Exists, f, cube, Edge::ONE, r);
        Ok(r)
    }

    /// Universal quantification `∀ vars . f` over a positive cube of
    /// variables.
    ///
    /// # Panics
    ///
    /// Panics if `vars` is not a positive cube.
    pub fn forall(&mut self, f: Edge, vars: Edge) -> Edge {
        self.assert_positive_cube(vars);
        self.try_forall(f, vars).expect(BUDGET_PANIC)
    }

    /// Checked [`Bdd::forall`]. A malformed `vars` is reported as
    /// [`BudgetExceeded::INTERNAL`] instead of panicking.
    pub fn try_forall(&mut self, f: Edge, vars: Edge) -> Result<Edge, BudgetExceeded> {
        self.check_positive_cube(vars)?;
        if let Some(r) = self.cache.get(Op::Forall, f, vars, Edge::ONE) {
            return Ok(r);
        }
        self.begin_op();
        match self.exists_rec(f.complement(), vars, 0) {
            Ok(r) => {
                let r = r.complement();
                self.cache.insert(Op::Forall, f, vars, Edge::ONE, r);
                Ok(self.end_op(r))
            }
            Err(e) => {
                self.abort_op();
                Err(e)
            }
        }
    }

    /// Relational product `∃ vars . (f · g)` (the workhorse of image
    /// computation), computed by a **fused** single descent over
    /// `(f, g, vars)` in the style of CUDD's `bddAndAbstract`: the
    /// conjunction is never materialized, so zero-products prune before
    /// recursing, a ⊤ `t`-branch at a quantified level absorbs the
    /// `e`-branch unseen, and the peak live-node count stays far below
    /// the unfused `exists(and(f, g), vars)` (which this is proven
    /// edge-for-edge equal to by the differential suite).
    ///
    /// # Panics
    ///
    /// Panics if `vars` is not a positive cube.
    pub fn and_exists(&mut self, f: Edge, g: Edge, vars: Edge) -> Edge {
        self.assert_positive_cube(vars);
        self.try_and_exists(f, g, vars).expect(BUDGET_PANIC)
    }

    /// Checked [`Bdd::and_exists`]: aborts cleanly with [`BudgetExceeded`]
    /// when the armed budget runs out, and reports a malformed `vars` as
    /// [`BudgetExceeded::INTERNAL`] instead of panicking.
    pub fn try_and_exists(
        &mut self,
        f: Edge,
        g: Edge,
        vars: Edge,
    ) -> Result<Edge, BudgetExceeded> {
        self.check_positive_cube(vars)?;
        self.begin_op();
        match self.and_exists_rec(f, g, vars, 0) {
            Ok(r) => Ok(self.end_op(r)),
            Err(e) => {
                self.abort_op();
                Err(e)
            }
        }
    }

    /// The fused relational-product recursion. Complement edges are
    /// handled in the terminal cases (`f = ¬g` prunes to 0 without any
    /// work); the cache key is canonicalized for commutativity by
    /// ordering the operands with [`Self::order_before`], so
    /// `and_exists(f, g, v)` and `and_exists(g, f, v)` share one entry.
    fn and_exists_rec(
        &mut self,
        f: Edge,
        g: Edge,
        mut cube: Edge,
        depth: u32,
    ) -> Result<Edge, BudgetExceeded> {
        self.charge_step()?;
        if depth > MAX_REC_DEPTH {
            return Err(BudgetExceeded::DEPTH);
        }
        // Terminal short-circuits of the conjunction: a zero product never
        // recurses, and a collapsed product degrades to plain `exists`.
        if f.is_zero() || g.is_zero() || f == g.complement() {
            return Ok(Edge::ZERO);
        }
        if f.is_one() || f == g {
            return self.exists_rec(g, cube, depth + 1);
        }
        if g.is_one() {
            return self.exists_rec(f, cube, depth + 1);
        }
        // Skip quantified variables above both operands (ordered BDDs
        // cannot depend on them).
        let top = self.level(f).min(self.level(g));
        while !cube.is_constant() && self.level(cube) < top {
            cube = self.node(cube).hi.complement_if(cube.is_complemented());
        }
        // Cube exhausted: the rest is a plain conjunction.
        if cube.is_constant() {
            return self.ite_rec(f, g, Edge::ZERO, depth + 1);
        }
        // Commutativity canonicalization for the cache key.
        let (f, g) = if self.order_before(g, f) { (g, f) } else { (f, g) };
        if let Some(r) = self.cache.get(Op::AndExists, f, g, cube) {
            return Ok(r);
        }
        let (f1, f0) = self.cof_at(f, top);
        let (g1, g0) = self.cof_at(g, top);
        let r = if self.level(cube) == top {
            let next = self.node(cube).hi.complement_if(cube.is_complemented());
            let t = self.and_exists_rec(f1, g1, next, depth + 1)?;
            // ⊤ absorbs the disjunction: the e-branch is never visited.
            // The `break_and_exists` test hook widens the short-circuit to
            // fire unconditionally — the bug class a wrong short-circuit
            // condition produces — for the `image-equivalence` mutation
            // gate.
            if t.is_one() || self.break_and_exists {
                t
            } else {
                let e = self.and_exists_rec(f0, g0, next, depth + 1)?;
                self.ite_rec(t, Edge::ONE, e, depth + 1)?
            }
        } else {
            let t = self.and_exists_rec(f1, g1, cube, depth + 1)?;
            let e = self.and_exists_rec(f0, g0, cube, depth + 1)?;
            self.mk_checked(top, t, e)?
        };
        self.cache.insert(Op::AndExists, f, g, cube, r);
        Ok(r)
    }

    /// Builds the positive cube `v1 · v2 · …` of a set of variables.
    pub fn cube_of_vars(&mut self, vars: &[Var]) -> Edge {
        // Construct bottom-up in the *current order*: sort by level, then
        // chain mk calls from the deepest level upwards.
        let mut levels: Vec<Var> = vars.iter().map(|&v| self.level_of_var(v)).collect();
        levels.sort();
        levels.dedup();
        let mut cube = Edge::ONE;
        for &l in levels.iter().rev() {
            cube = self.mk(l, cube, Edge::ZERO);
        }
        cube
    }

    /// Structured cube validation: `Err(BudgetExceeded::INTERNAL)` when
    /// `cube` is not a positive cube. The checked `try_*` quantifiers use
    /// this so a malformed cube reaching a long-running worker degrades to
    /// a status line instead of tripping `catch_unwind`; the infallible
    /// quantifiers keep their documented panic via
    /// [`Self::assert_positive_cube`].
    fn check_positive_cube(&self, mut cube: Edge) -> Result<(), BudgetExceeded> {
        while !cube.is_constant() {
            let n = self.node(cube);
            // A chain node is never a cube: its uncomplemented reading is a
            // disjunction, and the and-chain reading carries only negative
            // literals, which a positive cube excludes.
            if n.is_chain() {
                return Err(BudgetExceeded::INTERNAL);
            }
            let (hi, lo) = (
                n.hi.complement_if(cube.is_complemented()),
                n.lo.complement_if(cube.is_complemented()),
            );
            if !lo.is_zero() {
                return Err(BudgetExceeded::INTERNAL);
            }
            cube = hi;
        }
        if cube.is_one() {
            Ok(())
        } else {
            Err(BudgetExceeded::INTERNAL)
        }
    }

    fn assert_positive_cube(&self, cube: Edge) {
        assert!(
            self.check_positive_cube(cube).is_ok(),
            "quantifier argument must be a positive cube"
        );
    }

    /// Substitutes the function `g` for variable `var` in `f` (functional
    /// composition `f[var ← g]`).
    pub fn compose(&mut self, f: Edge, var: Var, g: Edge) -> Edge {
        self.try_compose(f, var, g).expect(BUDGET_PANIC)
    }

    /// Checked [`Bdd::compose`].
    pub fn try_compose(&mut self, f: Edge, var: Var, g: Edge) -> Result<Edge, BudgetExceeded> {
        self.begin_op();
        let level = self.level_of_var(var);
        match self.compose_rec(f, level, g, 0) {
            Ok(r) => Ok(self.end_op(r)),
            Err(e) => {
                self.abort_op();
                Err(e)
            }
        }
    }

    /// `level` is a position in the current order (see [`Self::cofactor_rec`]
    /// for the cache-key convention).
    fn compose_rec(
        &mut self,
        f: Edge,
        level: Var,
        g: Edge,
        depth: u32,
    ) -> Result<Edge, BudgetExceeded> {
        self.charge_step()?;
        if depth > MAX_REC_DEPTH {
            return Err(BudgetExceeded::DEPTH);
        }
        if self.level(f) > level {
            return Ok(f);
        }
        if let Some(r) = self.cache.get(Op::Compose(level.0), f, g, Edge::ZERO) {
            return Ok(r);
        }
        let top = self.level(f);
        let (f1, f0) = self.cof_at(f, top);
        let r = if top == level {
            self.ite_rec(g, f1, f0, depth + 1)?
        } else {
            let t = self.compose_rec(f1, level, g, depth + 1)?;
            let e = self.compose_rec(f0, level, g, depth + 1)?;
            // Cannot use mk: g may have pushed structure above `top`.
            let tv = self.try_var_at_level(top)?;
            self.ite_rec(tv, t, e, depth + 1)?
        };
        self.cache.insert(Op::Compose(level.0), f, g, Edge::ZERO, r);
        Ok(r)
    }

    /// Renames variables: substitutes `to[i]` for `from[i]` simultaneously.
    ///
    /// The mapping must be order-compatible in the sense that pairwise swaps
    /// do not reorder (`from` and `to` sorted consistently); this is the case
    /// for the present/next-state variable interleavings used by the FSM
    /// layer. Implemented by sequential composition from the bottom up.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn rename(&mut self, f: Edge, from: &[Var], to: &[Var]) -> Edge {
        assert_eq!(from.len(), to.len(), "rename arity mismatch");
        let mut pairs: Vec<(Var, Var)> =
            from.iter().copied().zip(to.iter().copied()).collect();
        // Compose deepest source first (deepest in the *current order*) so
        // earlier substitutions cannot be re-captured by later ones.
        pairs.sort_by_key(|p| std::cmp::Reverse(self.level_of_var(p.0)));
        let mut r = f;
        for (src, dst) in pairs {
            let g = self.var(dst);
            r = self.compose(r, src, g);
        }
        r
    }

    /// The support of `f`: the sorted set of variables `f` depends on.
    ///
    /// # Example
    ///
    /// ```
    /// use bddmin_bdd::{Bdd, Var};
    /// let mut bdd = Bdd::new(3);
    /// let (a, c) = (bdd.var(Var(0)), bdd.var(Var(2)));
    /// let f = bdd.or(a, c);
    /// assert_eq!(bdd.support(f), vec![Var(0), Var(2)]);
    /// ```
    pub fn support(&self, f: Edge) -> Vec<Var> {
        let mut seen = crate::util::Bitmap::new(self.nodes.len());
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f.regular()];
        while let Some(e) = stack.pop() {
            if e.is_constant() || !seen.insert(e.node().index()) {
                continue;
            }
            let n = self.node(e);
            // A chain node depends on every level it spans: the or-levels
            // are real literals and the bottom decision has `hi != lo`.
            for l in n.var.0..=n.bot.0 {
                vars.insert(self.var_at_level(Var(l)));
            }
            stack.push(n.hi.regular());
            stack.push(n.lo.regular());
        }
        vars.into_iter().collect()
    }

    /// The union of the supports of several functions.
    pub fn support_many(&self, fs: &[Edge]) -> Vec<Var> {
        let mut all = std::collections::BTreeSet::new();
        for &f in fs {
            all.extend(self.support(f));
        }
        all.into_iter().collect()
    }

    /// True if `f` depends on `var`.
    pub fn depends_on(&self, f: Edge, var: Var) -> bool {
        self.support(f).contains(&var)
    }

    /// Evaluates `f` under a total assignment (`assignment[i]` is the value
    /// of `Var(i)`).
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than some variable `f` depends on.
    pub fn eval(&self, f: Edge, assignment: &[bool]) -> bool {
        let mut e = f;
        'walk: while !e.is_constant() {
            let n = self.node(e);
            // Chain levels: the first satisfied or-literal short-circuits
            // the whole chain to (possibly complemented) true.
            for l in n.var.0..n.bot.0 {
                let var = self.var_at_level(Var(l));
                if assignment[var.index()] {
                    e = Edge::ONE.complement_if(e.is_complemented());
                    continue 'walk;
                }
            }
            let var = self.var_at_level(n.bot);
            let branch = if assignment[var.index()] { n.hi } else { n.lo };
            e = branch.complement_if(e.is_complemented());
        }
        e.is_one()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Bdd, Edge, Edge, Edge) {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let c = bdd.var(Var(2));
        (bdd, a, b, c)
    }

    #[test]
    fn basic_algebra() {
        let (mut bdd, a, b, _) = setup();
        let ab = bdd.and(a, b);
        let ba = bdd.and(b, a);
        assert_eq!(ab, ba);
        assert_eq!(bdd.or(a, a), a);
        assert_eq!(bdd.and(a, a), a);
        assert!(bdd.and(a, bdd.not(a)).is_zero());
        assert!(bdd.or(a, bdd.not(a)).is_one());
    }

    #[test]
    fn de_morgan() {
        let (mut bdd, a, b, _) = setup();
        let lhs = bdd.nand(a, b);
        let na = bdd.not(a);
        let nb = bdd.not(b);
        let rhs = bdd.or(na, nb);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn xor_xnor() {
        let (mut bdd, a, b, _) = setup();
        let x = bdd.xor(a, b);
        let xn = bdd.xnor(a, b);
        assert_eq!(xn, bdd.not(x));
        assert!(bdd.xor(a, a).is_zero());
        assert!(bdd.xnor(a, a).is_one());
    }

    #[test]
    fn ite_is_mux() {
        let (mut bdd, a, b, c) = setup();
        let m = bdd.ite(a, b, c);
        for bits in 0..8u32 {
            let assign = [(bits & 4) != 0, (bits & 2) != 0, (bits & 1) != 0];
            let expect = if assign[0] { assign[1] } else { assign[2] };
            assert_eq!(bdd.eval(m, &assign), expect, "assignment {assign:?}");
        }
    }

    #[test]
    fn implies_holds_checks() {
        let (mut bdd, a, b, _) = setup();
        let ab = bdd.and(a, b);
        let aob = bdd.or(a, b);
        assert!(bdd.implies_holds(ab, a));
        assert!(bdd.implies_holds(a, aob));
        assert!(!bdd.implies_holds(aob, ab));
        assert!(bdd.implies_holds(Edge::ZERO, ab));
        assert!(bdd.implies_holds(ab, Edge::ONE));
    }

    #[test]
    fn cofactor_both_polarities() {
        let (mut bdd, a, b, c) = setup();
        let f = bdd.ite(a, b, c);
        assert_eq!(bdd.cofactor(f, Var(0), true), b);
        assert_eq!(bdd.cofactor(f, Var(0), false), c);
        // Cofactor by a variable not in the support is the identity.
        let g = bdd.and(a, b);
        assert_eq!(bdd.cofactor(g, Var(2), true), g);
    }

    #[test]
    fn shannon_expansion() {
        let (mut bdd, a, b, c) = setup();
        let ab = bdd.and(a, b);
        let f = bdd.xor(ab, c);
        let f1 = bdd.cofactor(f, Var(1), true);
        let f0 = bdd.cofactor(f, Var(1), false);
        let bvar = bdd.var(Var(1));
        let rebuilt = bdd.ite(bvar, f1, f0);
        assert_eq!(rebuilt, f);
    }

    #[test]
    fn exists_forall() {
        let (mut bdd, a, b, c) = setup();
        let f = bdd.and(a, b);
        let cube_b = bdd.cube_of_vars(&[Var(1)]);
        assert_eq!(bdd.exists(f, cube_b), a);
        assert!(bdd.forall(f, cube_b).is_zero());
        let g = bdd.or(f, c);
        let cube_ab = bdd.cube_of_vars(&[Var(0), Var(1)]);
        assert!(bdd.exists(g, cube_ab).is_one());
        assert_eq!(bdd.forall(g, cube_ab), c);
    }

    #[test]
    fn exists_skips_high_vars() {
        let (mut bdd, _, b, c) = setup();
        let f = bdd.and(b, c);
        let cube = bdd.cube_of_vars(&[Var(0), Var(2)]);
        assert_eq!(bdd.exists(f, cube), b);
    }

    #[test]
    #[should_panic(expected = "positive cube")]
    fn exists_rejects_non_cube() {
        let (mut bdd, a, b, _) = setup();
        let non_cube = bdd.or(a, b);
        let f = bdd.and(a, b);
        bdd.exists(f, non_cube);
    }

    #[test]
    fn and_exists_is_image_shape() {
        let (mut bdd, a, b, c) = setup();
        let f = bdd.xnor(a, b);
        let g = bdd.ite(b, c, bdd.not(c));
        let cube = bdd.cube_of_vars(&[Var(1)]);
        let fused = bdd.and_exists(f, g, cube);
        let anded = bdd.and(f, g);
        let separate = bdd.exists(anded, cube);
        assert_eq!(fused, separate);
    }

    /// Deterministic xorshift for the differential sweep below.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// Build a pseudo-random function over `n` vars from a seed.
    fn random_fn(bdd: &mut Bdd, n: u32, seed: &mut u64) -> Edge {
        let mut f = if xorshift(seed) & 1 == 0 { Edge::ZERO } else { Edge::ONE };
        for _ in 0..(2 + (xorshift(seed) % 5)) {
            let v = bdd.var(Var((xorshift(seed) % n as u64) as u32));
            let v = if xorshift(seed) & 1 == 0 { bdd.not(v) } else { v };
            f = match xorshift(seed) % 3 {
                0 => bdd.and(f, v),
                1 => bdd.or(f, v),
                _ => bdd.xor(f, v),
            };
        }
        f
    }

    #[test]
    fn fused_matches_unfused_edge_for_edge() {
        for seed0 in 1..=24u64 {
            let mut bdd = Bdd::new(6);
            let mut seed = seed0.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let f = random_fn(&mut bdd, 6, &mut seed);
            let g = random_fn(&mut bdd, 6, &mut seed);
            let mask = xorshift(&mut seed) % 63 + 1;
            let vars: Vec<Var> = (0..6).filter(|i| mask & (1 << i) != 0).map(Var).collect();
            let cube = bdd.cube_of_vars(&vars);
            let fused = bdd.and_exists(f, g, cube);
            let anded = bdd.and(f, g);
            let separate = bdd.exists(anded, cube);
            assert_eq!(fused, separate, "seed {seed0} vars {vars:?}");
        }
    }

    #[test]
    fn and_exists_commutative_and_terminal_cases() {
        let (mut bdd, a, b, c) = setup();
        let f = bdd.ite(a, b, c);
        let g = bdd.xor(b, c);
        let cube = bdd.cube_of_vars(&[Var(1), Var(2)]);
        assert_eq!(bdd.and_exists(f, g, cube), bdd.and_exists(g, f, cube));
        // Terminal short-circuits.
        let nf = bdd.not(f);
        assert!(bdd.and_exists(f, nf, cube).is_zero());
        assert!(bdd.and_exists(Edge::ZERO, g, cube).is_zero());
        assert_eq!(bdd.and_exists(Edge::ONE, g, cube), bdd.exists(g, cube));
        assert_eq!(bdd.and_exists(f, f, cube), bdd.exists(f, cube));
        // Cube exhausted (all cube vars above both supports) degrades to and.
        let bc = bdd.and(b, c);
        let cube_a = bdd.cube_of_vars(&[Var(0)]);
        let g2 = bdd.or(b, c);
        let fused = bdd.and_exists(bc, g2, cube_a);
        // a is not in either support, so quantifying it is the identity.
        assert_eq!(fused, bdd.and(bc, g2));
    }

    #[test]
    fn try_and_exists_blown_budget_is_error_not_wrong_edge() {
        let (mut bdd, a, b, c) = setup();
        let f = bdd.ite(a, b, c);
        let g = bdd.xor(a, c);
        let cube = bdd.cube_of_vars(&[Var(1)]);
        let want = bdd.and_exists(f, g, cube);
        bdd.set_budget(crate::Budget::default().steps(1));
        match bdd.try_and_exists(f, g, cube) {
            Err(e) => assert_eq!(e, BudgetExceeded::STEPS),
            Ok(r) => assert_eq!(r, want, "a completed op must still be correct"),
        }
        bdd.clear_budget();
        assert_eq!(bdd.and_exists(f, g, cube), want);
    }

    #[test]
    fn try_quantifiers_degrade_on_malformed_cube() {
        let (mut bdd, a, b, _) = setup();
        let non_cube = bdd.or(a, b);
        let f = bdd.and(a, b);
        assert_eq!(bdd.try_exists(f, non_cube), Err(BudgetExceeded::INTERNAL));
        assert_eq!(bdd.try_forall(f, non_cube), Err(BudgetExceeded::INTERNAL));
        assert_eq!(bdd.try_and_exists(f, b, non_cube), Err(BudgetExceeded::INTERNAL));
        // A negative literal is not a positive cube either.
        let neg = bdd.not(a);
        assert_eq!(bdd.try_exists(f, neg), Err(BudgetExceeded::INTERNAL));
    }

    #[test]
    fn debug_break_and_exists_under_approximates() {
        let (mut bdd, a, b, c) = setup();
        let f = bdd.xnor(a, b);
        let g = bdd.ite(b, c, bdd.not(c));
        let cube = bdd.cube_of_vars(&[Var(1)]);
        let good = bdd.and_exists(f, g, cube);
        bdd.debug_break_and_exists();
        bdd.clear_caches();
        let broken = bdd.and_exists(f, g, cube);
        assert_ne!(broken, good, "the mutant must be observable");
        assert!(bdd.implies_holds(broken, good), "mutant under-approximates");
    }

    #[test]
    fn compose_substitutes() {
        let (mut bdd, a, b, c) = setup();
        let f = bdd.xor(a, b);
        let g = bdd.and(b, c);
        let comp = bdd.compose(f, Var(0), g);
        let expect = bdd.xor(g, b);
        assert_eq!(comp, expect);
    }

    #[test]
    fn compose_above_support_is_identity() {
        let (mut bdd, _, b, c) = setup();
        let f = bdd.and(b, c);
        let g = bdd.or(b, c);
        assert_eq!(bdd.compose(f, Var(0), g), f);
    }

    #[test]
    fn rename_swaps_disjoint_sets() {
        let mut bdd = Bdd::new(4);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let f = bdd.and(a, b);
        let r = bdd.rename(f, &[Var(0), Var(1)], &[Var(2), Var(3)]);
        let c = bdd.var(Var(2));
        let d = bdd.var(Var(3));
        assert_eq!(r, bdd.and(c, d));
    }

    #[test]
    fn support_and_depends() {
        let (mut bdd, a, _, c) = setup();
        let f = bdd.ite(a, c, bdd.not(c));
        assert_eq!(bdd.support(f), vec![Var(0), Var(2)]);
        assert!(bdd.depends_on(f, Var(0)));
        assert!(!bdd.depends_on(f, Var(1)));
        assert!(bdd.support(Edge::ONE).is_empty());
    }

    #[test]
    fn support_many_unions() {
        let (mut bdd, a, b, c) = setup();
        let f = bdd.and(a, b);
        let g = bdd.and(b, c);
        assert_eq!(bdd.support_many(&[f, g]), vec![Var(0), Var(1), Var(2)]);
    }

    #[test]
    fn many_variadic() {
        let (mut bdd, a, b, c) = setup();
        let conj = bdd.and_many([a, b, c]);
        let two = bdd.and(a, b);
        let expect = bdd.and(two, c);
        assert_eq!(conj, expect);
        assert!(bdd.and_many([]).is_one());
        assert!(bdd.or_many([]).is_zero());
    }

    #[test]
    fn cube_of_vars_dedups_and_sorts() {
        let mut bdd = Bdd::new(3);
        let c1 = bdd.cube_of_vars(&[Var(2), Var(0), Var(2)]);
        let c2 = bdd.cube_of_vars(&[Var(0), Var(2)]);
        assert_eq!(c1, c2);
    }

    #[test]
    fn eval_matches_truth_table() {
        let (mut bdd, a, b, c) = setup();
        let f = {
            let t = bdd.or(b, c);
            bdd.and(a, t)
        };
        for bits in 0..8u32 {
            let assign = [(bits & 4) != 0, (bits & 2) != 0, (bits & 1) != 0];
            let expect = assign[0] && (assign[1] || assign[2]);
            assert_eq!(bdd.eval(f, &assign), expect);
        }
    }

    #[test]
    fn cofactor_cube_multi() {
        let (mut bdd, a, b, c) = setup();
        let ab = bdd.and(a, b);
        let f = bdd.xor(ab, c);
        let r = bdd.cofactor_cube(f, &[(Var(0), true), (Var(1), true)]);
        assert_eq!(r, bdd.not(c));
    }
}
