//! Cube utilities: enumeration of the cubes of a function, cube construction
//! and recognition.
//!
//! The paper's lower-bound computation (Section 4.1.1) enumerates cubes of
//! the care function `c` "by traversing its BDD in a depth-first order,
//! returning a cube each time the constant 1 is reached", optionally
//! preferring *large* cubes (short paths). [`CubeIter`] implements exactly
//! this traversal; [`Bdd::shortest_cube`] finds a largest cube.

use crate::edge::{Edge, Var};
use crate::manager::Bdd;

/// A conjunction of literals, sorted by variable.
///
/// # Example
///
/// ```
/// use bddmin_bdd::{Bdd, Cube, Var};
/// let mut bdd = Bdd::new(3);
/// let cube = Cube::new(vec![(Var(0), true), (Var(2), false)]);
/// let edge = cube.to_edge(&mut bdd);
/// assert!(bdd.is_cube(edge));
/// assert_eq!(cube.len(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cube {
    literals: Vec<(Var, bool)>,
}

impl Cube {
    /// Builds a cube from literals; sorts them and panics on contradictory
    /// duplicates.
    ///
    /// # Panics
    ///
    /// Panics if the same variable appears with both polarities.
    pub fn new(mut literals: Vec<(Var, bool)>) -> Cube {
        literals.sort();
        literals.dedup();
        for w in literals.windows(2) {
            assert!(
                w[0].0 != w[1].0,
                "contradictory literals on {} in cube",
                w[0].0
            );
        }
        Cube { literals }
    }

    /// The literals, sorted by variable.
    pub fn literals(&self) -> &[(Var, bool)] {
        &self.literals
    }

    /// Number of literals (0 = the universal cube, the constant 1).
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// True for the empty (universal) cube.
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// The characteristic function of this cube.
    pub fn to_edge(&self, bdd: &mut Bdd) -> Edge {
        // Literals are sorted by identity; mk wants levels built bottom-up
        // in the manager's *current* order, so re-sort by level first.
        let mut lits: Vec<(Var, bool)> = self
            .literals
            .iter()
            .map(|&(v, pos)| (bdd.level_of_var(v), pos))
            .collect();
        lits.sort();
        let mut e = Edge::ONE;
        for &(l, pos) in lits.iter().rev() {
            e = if pos {
                bdd.mk(l, e, Edge::ZERO)
            } else {
                bdd.mk(l, Edge::ZERO, e)
            };
        }
        e
    }
}

impl std::fmt::Display for Cube {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.literals.is_empty() {
            return write!(f, "1");
        }
        for (i, &(v, pos)) in self.literals.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            if !pos {
                write!(f, "¬")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

/// One traversal state: the edge being explored, how many virtual levels
/// of a chain node have already been resolved, and the path so far.
type CubeFrame = (Edge, u32, Vec<(Var, bool)>);

/// Depth-first iterator over the cubes (1-paths) of a function.
///
/// Each yielded [`Cube`] lists the literals on one path from the root to the
/// constant 1; variables not on the path are free. The union of the yielded
/// cubes is exactly the onset.
///
/// Created by [`Bdd::cubes`].
#[derive(Debug)]
pub struct CubeIter<'a> {
    bdd: &'a Bdd,
    /// Stack of frames awaiting exploration. The skip counts how many
    /// levels of a chain node have already been resolved, so chain nodes
    /// are walked one virtual level at a time without materializing their
    /// decompression.
    stack: Vec<CubeFrame>,
}

impl<'a> Iterator for CubeIter<'a> {
    type Item = Cube;

    fn next(&mut self) -> Option<Cube> {
        while let Some((e, skip, path)) = self.stack.pop() {
            if e.is_one() {
                return Some(Cube::new(path));
            }
            if e.is_zero() {
                continue;
            }
            let n = self.bdd.node(e);
            let vt = n.var.0 + skip;
            let (hi, hi_skip, lo, lo_skip) = if vt < n.bot.0 {
                // Inside a chain: the virtual node at `vt` has hi = 1 (the
                // or-chain is satisfied) and lo = the rest of the chain.
                (
                    Edge::ONE.complement_if(e.is_complemented()),
                    0,
                    e,
                    skip + 1,
                )
            } else {
                (
                    n.hi.complement_if(e.is_complemented()),
                    0,
                    n.lo.complement_if(e.is_complemented()),
                    0,
                )
            };
            // Push low first so the high (then) branch is explored first,
            // matching a conventional depth-first order. Paths record
            // variable identities, not levels.
            let var = self.bdd.var_at_level(Var(vt));
            let mut lo_path = path.clone();
            lo_path.push((var, false));
            self.stack.push((lo, lo_skip, lo_path));
            let mut hi_path = path;
            hi_path.push((var, true));
            self.stack.push((hi, hi_skip, hi_path));
        }
        None
    }
}

impl Bdd {
    /// Iterates over the cubes of `f` in depth-first order.
    ///
    /// # Example
    ///
    /// ```
    /// use bddmin_bdd::{Bdd, Var};
    /// let mut bdd = Bdd::new(2);
    /// let (a, b) = (bdd.var(Var(0)), bdd.var(Var(1)));
    /// let f = bdd.or(a, b);
    /// let cubes: Vec<_> = bdd.cubes(f).collect();
    /// assert_eq!(cubes.len(), 2); // a  and  ¬a·b
    /// ```
    pub fn cubes(&self, f: Edge) -> CubeIter<'_> {
        CubeIter {
            bdd: self,
            stack: vec![(f, 0, Vec::new())],
        }
    }

    /// True if `f` is a cube (a conjunction of literals); the constant 1 is
    /// the empty cube, the constant 0 is **not** a cube.
    pub fn is_cube(&self, f: Edge) -> bool {
        let (mut e, mut skip) = (f, 0u32);
        loop {
            if e.is_one() {
                return true;
            }
            if e.is_zero() {
                return false;
            }
            let n = self.node(e);
            let vt = n.var.0 + skip;
            let (hi, lo) = if vt < n.bot.0 {
                // Virtual chain level: hi = 1, lo = rest of the chain. A
                // complemented chain edge is an and of negative literals —
                // a cube — and reads hi = 0 here, continuing down the lo
                // side; a regular (or-chain) edge has two nonzero children
                // and is correctly rejected below.
                (Edge::ONE.complement_if(e.is_complemented()), e)
            } else {
                (
                    n.hi.complement_if(e.is_complemented()),
                    n.lo.complement_if(e.is_complemented()),
                )
            };
            let next_skip = if vt < n.bot.0 { skip + 1 } else { 0 };
            (e, skip) = if lo.is_zero() {
                (hi, 0)
            } else if hi.is_zero() {
                (lo, next_skip)
            } else {
                return false;
            };
        }
    }

    /// A largest cube of `f` (fewest literals), found as a shortest 1-path;
    /// `None` iff `f = 0`.
    ///
    /// Useful for the paper's "look for large cubes" lower-bound refinement.
    pub fn shortest_cube(&self, f: Edge) -> Option<Cube> {
        // Breadth-first over (edge, path) states; paths are short, so the
        // duplicated path storage is acceptable.
        use std::collections::VecDeque;
        let mut queue: VecDeque<CubeFrame> = VecDeque::new();
        // Visited states are (edge, chain-skip) pairs so each virtual
        // level of a chain node is expanded at most once.
        let mut visited = std::collections::HashSet::new();
        queue.push_back((f, 0, Vec::new()));
        while let Some((e, skip, path)) = queue.pop_front() {
            if e.is_one() {
                return Some(Cube::new(path));
            }
            if e.is_zero() || !visited.insert((e, skip)) {
                continue;
            }
            let n = self.node(e);
            let vt = n.var.0 + skip;
            let (hi, hi_skip, lo, lo_skip) = if vt < n.bot.0 {
                (
                    Edge::ONE.complement_if(e.is_complemented()),
                    0,
                    e,
                    skip + 1,
                )
            } else {
                (
                    n.hi.complement_if(e.is_complemented()),
                    0,
                    n.lo.complement_if(e.is_complemented()),
                    0,
                )
            };
            let var = self.var_at_level(Var(vt));
            let mut hp = path.clone();
            hp.push((var, true));
            queue.push_back((hi, hi_skip, hp));
            let mut lp = path;
            lp.push((var, false));
            queue.push_back((lo, lo_skip, lp));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_round_trip() {
        let mut bdd = Bdd::new(4);
        let cube = Cube::new(vec![(Var(3), false), (Var(1), true)]);
        assert_eq!(cube.literals(), &[(Var(1), true), (Var(3), false)]);
        let e = cube.to_edge(&mut bdd);
        assert!(bdd.is_cube(e));
        let b = bdd.var(Var(1));
        let nd = bdd.literal(Var(3), false);
        assert_eq!(e, bdd.and(b, nd));
    }

    #[test]
    #[should_panic(expected = "contradictory")]
    fn contradictory_cube_panics() {
        Cube::new(vec![(Var(0), true), (Var(0), false)]);
    }

    #[test]
    fn cube_display() {
        let c = Cube::new(vec![(Var(0), true), (Var(2), false)]);
        assert_eq!(c.to_string(), "x1·¬x3");
        assert_eq!(Cube::default().to_string(), "1");
    }

    #[test]
    fn cubes_cover_onset_exactly() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let c = bdd.var(Var(2));
        let ab = bdd.and(a, b);
        let f = bdd.xor(ab, c);
        let cubes: Vec<Cube> = bdd.cubes(f).collect();
        assert!(!cubes.is_empty());
        let union = {
            let parts: Vec<Edge> = cubes.iter().map(|q| q.to_edge(&mut bdd)).collect();
            bdd.or_many(parts)
        };
        assert_eq!(union, f);
    }

    #[test]
    fn cubes_of_constants() {
        let bdd = Bdd::new(2);
        assert_eq!(bdd.cubes(Edge::ZERO).count(), 0);
        let ones: Vec<Cube> = bdd.cubes(Edge::ONE).collect();
        assert_eq!(ones, vec![Cube::default()]);
    }

    #[test]
    fn is_cube_detection() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        assert!(bdd.is_cube(Edge::ONE));
        assert!(!bdd.is_cube(Edge::ZERO));
        assert!(bdd.is_cube(a));
        assert!(bdd.is_cube(bdd.not(a)));
        let ab = bdd.and(a, b);
        assert!(bdd.is_cube(ab));
        let nb = bdd.not(b);
        let anb = bdd.and(a, nb);
        assert!(bdd.is_cube(anb));
        let aob = bdd.or(a, b);
        assert!(!bdd.is_cube(aob));
        let axb = bdd.xor(a, b);
        assert!(!bdd.is_cube(axb));
    }

    #[test]
    fn shortest_cube_finds_largest() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let c = bdd.var(Var(2));
        // f = a + ¬a·b·c: shortest cube is `a` (1 literal).
        let bc = bdd.and(b, c);
        let f = bdd.or(a, bc);
        let best = bdd.shortest_cube(f).expect("onset non-empty");
        assert_eq!(best.len(), 1);
        assert!(bdd.shortest_cube(Edge::ZERO).is_none());
        assert_eq!(bdd.shortest_cube(Edge::ONE).map(|c| c.len()), Some(0));
    }

    #[test]
    fn cube_count_respects_limit_pattern() {
        // Mirror how the lower bound limits enumeration to the first k cubes.
        let mut bdd = Bdd::new(4);
        let vars: Vec<Edge> = (0..4).map(|i| bdd.var(Var(i))).collect();
        let x01 = bdd.xor(vars[0], vars[1]);
        let x23 = bdd.xor(vars[2], vars[3]);
        let f = bdd.or(x01, x23);
        let first_three: Vec<Cube> = bdd.cubes(f).take(3).collect();
        assert_eq!(first_three.len(), 3);
        for q in &first_three {
            let e = q.to_edge(&mut bdd);
            assert!(bdd.implies_holds(e, f), "enumerated cube inside onset");
        }
    }
}
