//! Transferring functions between managers, with variable remapping.
//!
//! Use cases:
//!
//! * **variable-order experiments**: rebuild the same functions under a
//!   different fixed order and compare sizes (the paper fixes the order;
//!   this quantifies how much that choice matters),
//! * **manager compaction**: move the live functions into a fresh manager,
//!   dropping all dead nodes and cache history.

use std::collections::HashMap;
use std::fmt;

use crate::edge::{Edge, Var};
use crate::manager::Bdd;
use crate::util::FastBuild;

/// A request-reachable defect in a variable mapping handed to
/// [`Bdd::try_transfer`].
///
/// A variable map comes from the outside world (a job's permutation, a
/// CLI flag, an experiment config), so a bad one is an *input* error, not
/// a kernel invariant: long-lived managers must reject it and keep
/// serving. The panicking [`Bdd::transfer`] wrapper is retained for the
/// call sites that construct their own (infallible) maps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TransferError {
    /// Two source variables map to the same target variable, so the
    /// rebuilt function would conflate them.
    NotInjective {
        /// The first source variable seen mapping to `target`.
        first: Var,
        /// The second source variable mapping to `target`.
        second: Var,
        /// The shared image.
        target: Var,
    },
    /// The map sends a support variable outside the target manager's
    /// declared variables.
    UndeclaredTarget {
        /// The source variable being mapped.
        source: Var,
        /// Its (out-of-range) image.
        target: Var,
        /// How many variables the target manager declares.
        declared: usize,
    },
}

impl fmt::Display for TransferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TransferError::NotInjective {
                first,
                second,
                target,
            } => write!(
                f,
                "variable map not injective: {first} and {second} both map to {target}"
            ),
            TransferError::UndeclaredTarget {
                source,
                target,
                declared,
            } => write!(
                f,
                "target variable {target} not declared \
                 ({source} maps to it, target manager has {declared} variables)"
            ),
        }
    }
}

impl std::error::Error for TransferError {}

impl Bdd {
    /// Rebuilds `f` (a function of *this* manager) inside `target`,
    /// mapping each source variable `v` to `var_map(v)`. Returns the
    /// corresponding edge of `target`.
    ///
    /// The mapping may permute variables arbitrarily — the function is
    /// reconstructed semantically (Shannon expansion in the target order),
    /// not structurally, so any injective mapping is valid. The two
    /// managers do **not** need to share a variable order: expansion
    /// follows the target's current (possibly reordered) levels. The
    /// source manager is `&mut` because intermediate cofactors are
    /// hash-consed into it.
    ///
    /// # Panics
    ///
    /// Panics if the mapping is not injective on the support of `f`, or
    /// maps to undeclared target variables. Call [`Bdd::try_transfer`]
    /// instead when the map comes from untrusted input.
    ///
    /// # Example
    ///
    /// ```
    /// use bddmin_bdd::{Bdd, Var};
    /// let mut src = Bdd::with_names(&["a", "b"]);
    /// let a = src.var(Var(0));
    /// let b = src.var(Var(1));
    /// let f = src.and(a, b);
    ///
    /// let mut dst = Bdd::with_names(&["x", "y", "z"]);
    /// // a -> z, b -> x (order reversed in the target).
    /// let g = src.transfer(f, &mut dst, |v| Var(2 - 2 * v.0));
    /// assert!(dst.eval(g, &[true, false, true]));
    /// assert!(!dst.eval(g, &[false, false, true]));
    /// ```
    pub fn transfer(
        &mut self,
        f: Edge,
        target: &mut Bdd,
        var_map: impl Fn(Var) -> Var,
    ) -> Edge {
        match self.try_transfer(f, target, var_map) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Bdd::transfer`] with the variable map validated instead of
    /// trusted: a non-injective map or one that maps support variables to
    /// undeclared target variables returns a structured
    /// [`TransferError`], leaving both managers untouched, so a malformed
    /// request cannot kill a long-lived manager.
    ///
    /// # Example
    ///
    /// ```
    /// use bddmin_bdd::{Bdd, TransferError, Var};
    /// let mut src = Bdd::new(2);
    /// let a = src.var(Var(0));
    /// let b = src.var(Var(1));
    /// let f = src.and(a, b);
    /// let mut dst = Bdd::new(2);
    /// // A malicious identity-collapsing map is rejected, not fatal.
    /// let err = src.try_transfer(f, &mut dst, |_| Var(0)).unwrap_err();
    /// assert!(matches!(err, TransferError::NotInjective { .. }));
    /// // The managers still work.
    /// let g = src.try_transfer(f, &mut dst, |v| v).unwrap();
    /// assert_eq!(dst.size(g), src.size(f));
    /// ```
    pub fn try_transfer(
        &mut self,
        f: Edge,
        target: &mut Bdd,
        var_map: impl Fn(Var) -> Var,
    ) -> Result<Edge, TransferError> {
        // Map the support and check injectivity. Validation completes
        // before any node is built, so an error leaves no side effects.
        let support = self.support(f);
        let mut mapping: HashMap<Var, Var> = HashMap::new();
        let mut used: HashMap<Var, Var> = HashMap::new();
        for &v in &support {
            let t = var_map(v);
            if t.index() >= target.num_vars() {
                return Err(TransferError::UndeclaredTarget {
                    source: v,
                    target: t,
                    declared: target.num_vars(),
                });
            }
            if let Some(&prev) = used.get(&t) {
                return Err(TransferError::NotInjective {
                    first: prev,
                    second: v,
                    target: t,
                });
            }
            used.insert(t, v);
            mapping.insert(v, t);
        }
        // Expand source variables in TARGET level order so the target BDD
        // can be built bottom-up with plain ite over its own order. Sorting
        // by the target's *current* levels (not identities) keeps transfer
        // correct and efficient when either manager has been reordered.
        let mut by_target: Vec<(Var, Var)> = mapping.iter().map(|(&s, &t)| (t, s)).collect();
        by_target.sort_by_key(|&(t, s)| (target.level_of_var(t), s));
        let plan: Vec<(Var, Var)> = by_target; // (target var, source var)
        let mut memo: HashMap<(Edge, usize), Edge, FastBuild> = HashMap::default();
        Ok(self.transfer_rec(f, target, &plan, 0, &mut memo))
    }

    fn transfer_rec(
        &mut self,
        f: Edge,
        target: &mut Bdd,
        plan: &[(Var, Var)],
        depth: usize,
        memo: &mut HashMap<(Edge, usize), Edge, FastBuild>,
    ) -> Edge {
        if f.is_constant() {
            return f; // ONE/ZERO are identical edges in every manager
        }
        debug_assert!(depth < plan.len(), "non-constant with empty support");
        if let Some(&r) = memo.get(&(f, depth)) {
            return r;
        }
        let (tv, sv) = plan[depth];
        let f1 = self.cofactor(f, sv, true);
        let f0 = self.cofactor(f, sv, false);
        let r = if f1 == f0 {
            self.transfer_rec(f1, target, plan, depth + 1, memo)
        } else {
            let t = self.transfer_rec(f1, target, plan, depth + 1, memo);
            let e = self.transfer_rec(f0, target, plan, depth + 1, memo);
            let tvar = target.var(tv);
            target.ite(tvar, t, e)
        };
        memo.insert((f, depth), r);
        r
    }

    /// Rebuilds several functions into a fresh manager with the same
    /// variable names and order, dropping every dead node (compaction).
    /// Returns the new manager and the transferred edges.
    ///
    /// # Example
    ///
    /// ```
    /// use bddmin_bdd::{Bdd, Var};
    /// let mut bdd = Bdd::new(8);
    /// let a = bdd.var(Var(0));
    /// let b = bdd.var(Var(1));
    /// let keep = bdd.xor(a, b);
    /// for i in 2..8 {
    ///     let v = bdd.var(Var(i)); // scratch work
    ///     let _ = bdd.and(keep, v);
    /// }
    /// let (fresh, kept) = bdd.compacted(&[keep]);
    /// assert_eq!(fresh.size(kept[0]), bdd.size(keep));
    /// assert!(fresh.stats().live_nodes <= bdd.stats().live_nodes);
    /// ```
    pub fn compacted(&mut self, functions: &[Edge]) -> (Bdd, Vec<Edge>) {
        let names: Vec<String> = (0..self.num_vars())
            .map(|i| self.var_name(Var(i as u32)).to_owned())
            .collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        // The compacted manager keeps the source's representation mode.
        let mut fresh = if self.chain_mode() {
            Bdd::with_names_chained(&name_refs)
        } else {
            Bdd::with_names(&name_refs)
        };
        let moved = functions
            .iter()
            .map(|&f| self.transfer(f, &mut fresh, |v| v))
            .collect();
        (fresh, moved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_transfer_preserves_structure() {
        let mut src = Bdd::new(4);
        let a = src.var(Var(0));
        let b = src.var(Var(1));
        let c = src.var(Var(2));
        let ab = src.and(a, b);
        let f = src.xor(ab, c);
        let mut dst = Bdd::new(4);
        let g = src.transfer(f, &mut dst, |v| v);
        assert_eq!(dst.size(g), src.size(f));
        for bits in 0..16u32 {
            let assign: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(src.eval(f, &assign), dst.eval(g, &assign));
        }
    }

    #[test]
    fn permuted_transfer_is_semantically_correct() {
        let mut src = Bdd::new(3);
        let a = src.var(Var(0));
        let b = src.var(Var(1));
        let c = src.var(Var(2));
        let bc = src.or(b, c);
        let f = src.and(a, bc);
        // Reverse the order: a->2, b->1, c->0.
        let mut dst = Bdd::new(3);
        let g = src.transfer(f, &mut dst, |v| Var(2 - v.0));
        for bits in 0..8u32 {
            let assign: Vec<bool> = (0..3).map(|i| bits >> (2 - i) & 1 == 1).collect();
            // src vars: a=assign[0], b=assign[1], c=assign[2]
            // dst vars: position 2-i
            let dst_assign = vec![assign[2], assign[1], assign[0]];
            assert_eq!(src.eval(f, &assign), dst.eval(g, &dst_assign));
        }
    }

    #[test]
    fn order_changes_size_for_achilles_function() {
        // f = a1·b1 + a2·b2 + a3·b3 under interleaved vs separated order.
        let n = 3;
        let mut sep = Bdd::new(2 * n); // a1..a3 then b1..b3
        let mut f_sep = Edge::ZERO;
        for i in 0..n {
            let ai = sep.var(Var(i as u32));
            let bi = sep.var(Var((n + i) as u32));
            let t = sep.and(ai, bi);
            f_sep = sep.or(f_sep, t);
        }
        // Transfer to interleaved order: ai -> 2i, bi -> 2i+1.
        let mut inter = Bdd::new(2 * n);
        let g = sep.transfer(f_sep, &mut inter, |v| {
            let i = v.index();
            if i < n {
                Var((2 * i) as u32)
            } else {
                Var((2 * (i - n) + 1) as u32)
            }
        });
        assert!(
            inter.size(g) < sep.size(f_sep),
            "interleaving should shrink: {} vs {}",
            inter.size(g),
            sep.size(f_sep)
        );
    }

    #[test]
    fn constants_transfer_trivially() {
        let mut src = Bdd::new(2);
        let mut dst = Bdd::new(2);
        assert_eq!(src.transfer(Edge::ONE, &mut dst, |v| v), Edge::ONE);
        assert_eq!(src.transfer(Edge::ZERO, &mut dst, |v| v), Edge::ZERO);
    }

    #[test]
    #[should_panic(expected = "not injective")]
    fn non_injective_map_panics() {
        let mut src = Bdd::new(2);
        let a = src.var(Var(0));
        let b = src.var(Var(1));
        let f = src.and(a, b);
        let mut dst = Bdd::new(2);
        let _ = src.transfer(f, &mut dst, |_| Var(0));
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn out_of_range_target_panics() {
        let mut src = Bdd::new(2);
        let a = src.var(Var(0));
        let mut dst = Bdd::new(1);
        let _ = src.transfer(a, &mut dst, |_| Var(5));
    }

    #[test]
    fn try_transfer_rejects_bad_maps_and_keeps_managers_alive() {
        let mut src = Bdd::new(3);
        let a = src.var(Var(0));
        let b = src.var(Var(1));
        let f = src.and(a, b);
        let mut dst = Bdd::new(2);
        // Non-injective: both support variables collapse onto v0.
        let err = src.try_transfer(f, &mut dst, |_| Var(0)).unwrap_err();
        match err {
            TransferError::NotInjective { first, second, target } => {
                assert_eq!(first, Var(0));
                assert_eq!(second, Var(1));
                assert_eq!(target, Var(0));
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert!(err.to_string().contains("not injective"), "{err}");
        // Out-of-range image carries the full context.
        let err = src.try_transfer(f, &mut dst, |v| Var(v.0 + 7)).unwrap_err();
        match err {
            TransferError::UndeclaredTarget { source, target, declared } => {
                assert_eq!(source, Var(0));
                assert_eq!(target, Var(7));
                assert_eq!(declared, 2);
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert!(err.to_string().contains("not declared"), "{err}");
        // The rejections are side-effect free: the same managers still
        // serve well-formed requests (the long-lived-manager contract).
        let g = src.try_transfer(f, &mut dst, |v| v).unwrap();
        assert_eq!(dst.size(g), src.size(f));
        for bits in 0..4u32 {
            let assign: Vec<bool> = (0..2).map(|i| bits >> i & 1 == 1).collect();
            let mut full = assign.clone();
            full.push(false);
            assert_eq!(src.eval(f, &full), dst.eval(g, &assign));
        }
    }

    #[test]
    fn compaction_drops_garbage() {
        let mut bdd = Bdd::new(6);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let keep = bdd.xnor(a, b);
        // Scratch garbage.
        for i in 2..6 {
            let v = bdd.var(Var(i));
            let w = bdd.var(Var(i - 1));
            let _ = bdd.xor(v, w);
        }
        let before = bdd.stats().live_nodes;
        let (fresh, moved) = bdd.compacted(&[keep]);
        assert!(fresh.stats().live_nodes < before);
        assert_eq!(fresh.size(moved[0]), bdd.size(keep));
        assert_eq!(fresh.var_name(Var(3)), bdd.var_name(Var(3)));
    }
}
