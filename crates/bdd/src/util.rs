//! Small kernel utilities: a dense bitmap over node slots and a fast
//! non-cryptographic hasher for internal memo tables.

use std::hash::{BuildHasherDefault, Hasher};

/// A dense bitset indexed by node slot, used for GC marking and DAG
/// traversals (`size`, `level_profile`, …). One cache line covers 512
/// slots, versus one heap entry per slot for a `HashSet<NodeId>`.
#[derive(Debug, Default)]
pub(crate) struct Bitmap {
    words: Vec<u64>,
}

impl Bitmap {
    /// An all-zero bitmap able to hold `len` bits.
    pub(crate) fn new(len: usize) -> Bitmap {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
        }
    }

    #[inline]
    pub(crate) fn get(&self, i: usize) -> bool {
        self.words[i >> 6] >> (i & 63) & 1 == 1
    }

    #[inline]
    pub(crate) fn set(&mut self, i: usize) {
        self.words[i >> 6] |= 1 << (i & 63);
    }

    /// Sets bit `i`; returns true if it was previously clear (first visit).
    #[inline]
    pub(crate) fn insert(&mut self, i: usize) -> bool {
        let w = &mut self.words[i >> 6];
        let bit = 1u64 << (i & 63);
        let fresh = *w & bit == 0;
        *w |= bit;
        fresh
    }

    /// Number of set bits.
    pub(crate) fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Multiply-xorshift finalizer (splitmix64 style): cheap, and good enough
/// that linear probing stays well distributed on packed node keys.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A `Hasher` that runs [`mix64`] over the written words — a SipHash
/// replacement for interior memo tables whose keys are already
/// well-distributed integers. Not DoS-resistant; never use for
/// attacker-controlled keys.
#[derive(Default)]
pub struct FastHasher {
    state: u64,
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for composite keys; the hot paths use write_u64/u32.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = mix64(self.state.rotate_left(26) ^ i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// Build-hasher for [`FastHasher`]-backed `HashMap`s / `HashSet`s.
pub type FastBuild = BuildHasherDefault<FastHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_set_get_insert() {
        let mut b = Bitmap::new(130);
        assert!(!b.get(0) && !b.get(129));
        assert!(b.insert(129));
        assert!(!b.insert(129));
        assert!(b.get(129));
        b.set(63);
        b.set(64);
        assert_eq!(b.count(), 3);
    }

    #[test]
    fn bitmap_zero_len() {
        let b = Bitmap::new(0);
        assert_eq!(b.count(), 0);
    }

    #[test]
    fn mix64_spreads_small_inputs() {
        // Consecutive inputs must not collide in the low bits (the table
        // index bits).
        let mut seen = std::collections::HashSet::new();
        for i in 0..1024u64 {
            seen.insert(mix64(i) & 0xFFFF);
        }
        assert!(seen.len() > 950, "low-bit collisions: {}", 1024 - seen.len());
    }
}
