//! DOT (Graphviz) export.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::edge::{Edge, NodeId};
use crate::manager::Bdd;

impl Bdd {
    /// Renders the shared BDD of the given labelled functions as a Graphviz
    /// `digraph`.
    ///
    /// Solid arrows are then-edges, dashed arrows else-edges; a dot on the
    /// arrowhead (`odot`) marks a complemented edge.
    ///
    /// # Example
    ///
    /// ```
    /// use bddmin_bdd::{Bdd, Var};
    /// let mut bdd = Bdd::new(2);
    /// let a = bdd.var(Var(0));
    /// let b = bdd.var(Var(1));
    /// let f = bdd.xor(a, b);
    /// let dot = bdd.to_dot(&[("f", f)]);
    /// assert!(dot.contains("digraph"));
    /// assert!(dot.contains("x1"));
    /// ```
    pub fn to_dot(&self, functions: &[(&str, Edge)]) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph bdd {{");
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  node [shape=circle];");
        let _ = writeln!(out, "  t [label=\"1\", shape=box];");
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut stack: Vec<Edge> = Vec::new();
        for (name, f) in functions {
            let _ = writeln!(out, "  \"root_{name}\" [label=\"{name}\", shape=plaintext];");
            let _ = writeln!(
                out,
                "  \"root_{name}\" -> {} [arrowhead={}];",
                node_name(*f),
                if f.is_complemented() { "odot" } else { "normal" }
            );
            stack.push(f.regular());
        }
        while let Some(e) = stack.pop() {
            if e.is_constant() || !seen.insert(e.node()) {
                continue;
            }
            let n = self.node(e);
            if n.is_chain() {
                // A chain node spans levels var..=bot; label it with the
                // range and double-border it so compressed chains are
                // visible at a glance.
                let _ = writeln!(
                    out,
                    "  n{} [label=\"{}..{}\", peripheries=2];",
                    e.node().0,
                    self.var_name(self.var_at_level(n.var)),
                    self.var_name(self.var_at_level(n.bot))
                );
            } else {
                let _ = writeln!(
                    out,
                    "  n{} [label=\"{}\"];",
                    e.node().0,
                    self.var_name(self.var_at_level(n.var))
                );
            }
            let _ = writeln!(
                out,
                "  n{} -> {} [arrowhead={}];",
                e.node().0,
                node_name(n.hi),
                if n.hi.is_complemented() { "odot" } else { "normal" }
            );
            let _ = writeln!(
                out,
                "  n{} -> {} [style=dashed, arrowhead={}];",
                e.node().0,
                node_name(n.lo),
                if n.lo.is_complemented() { "odot" } else { "normal" }
            );
            stack.push(n.hi.regular());
            stack.push(n.lo.regular());
        }
        let _ = writeln!(out, "}}");
        out
    }
}

fn node_name(e: Edge) -> String {
    if e.is_constant() {
        "t".to_owned()
    } else {
        format!("n{}", e.node().0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Var;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut bdd = Bdd::with_names(&["a", "b"]);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let f = bdd.and(a, b);
        let dot = bdd.to_dot(&[("f", f)]);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("label=\"a\""));
        assert!(dot.contains("label=\"b\""));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("root_f"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_marks_complement_edges() {
        let mut bdd = Bdd::with_names(&["a"]);
        let a = bdd.var(Var(0));
        let dot = bdd.to_dot(&[("na", bdd.not(a))]);
        assert!(dot.contains("odot"));
    }

    #[test]
    fn dot_shares_nodes_across_functions() {
        let mut bdd = Bdd::with_names(&["a", "b"]);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let f = bdd.and(a, b);
        let g = bdd.or(a, b);
        let dot = bdd.to_dot(&[("f", f), ("g", g)]);
        // b's node is shared: it appears exactly once as a definition.
        let defs = dot.matches("label=\"b\"").count();
        assert_eq!(defs, 1);
    }
}
