//! Parser for the paper's leaf-specification notation.
//!
//! Section 3.2 of the paper specifies incompletely specified functions by
//! listing "the values of the function on the leaves of the binary decision
//! tree … from left to right", with `d` marking don't-care leaves, e.g.
//! `(d1 01)` over two variables or `(1d d1 d0 0d)` over three. The left
//! branch is 0, the right branch is 1 (paper Figure 1f caption), so the
//! leftmost leaf is the all-zero assignment.

use std::fmt;

use crate::edge::{Edge, Var};
use crate::manager::Bdd;

/// A parsed leaf specification: an incompletely specified function as
/// `(f, c)` where `c` is the care function.
///
/// # Example
///
/// ```
/// use bddmin_bdd::{Bdd, LeafSpec};
/// # fn main() -> Result<(), bddmin_bdd::ParseLeafSpecError> {
/// let mut bdd = Bdd::new(2);
/// // Paper §3.2 example 1: the instance (d1 01).
/// let spec = LeafSpec::parse("d1 01")?;
/// assert_eq!(spec.num_vars(), 2);
/// let (f, c) = spec.build(&mut bdd);
/// assert_eq!(bdd.sat_fraction(c), 0.75); // one of four leaves is DC
/// # let _ = f;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeafSpec {
    /// One entry per leaf, left to right: `Some(v)` = specified value,
    /// `None` = don't care.
    leaves: Vec<Option<bool>>,
    num_vars: usize,
}

/// Error from [`LeafSpec::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseLeafSpecError {
    message: String,
}

impl fmt::Display for ParseLeafSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ParseLeafSpecError {}

impl LeafSpec {
    /// Parses a string of `0`, `1` and `d` characters (whitespace, commas
    /// and parentheses ignored) whose length must be a power of two.
    ///
    /// # Errors
    ///
    /// Returns an error on foreign characters, an empty string or a
    /// non-power-of-two length.
    pub fn parse(input: &str) -> Result<LeafSpec, ParseLeafSpecError> {
        let mut leaves = Vec::new();
        for ch in input.chars() {
            match ch {
                '0' => leaves.push(Some(false)),
                '1' => leaves.push(Some(true)),
                'd' | 'D' | '-' => leaves.push(None),
                ' ' | '\t' | '\n' | ',' | '(' | ')' => {}
                other => {
                    return Err(ParseLeafSpecError {
                        message: format!("unexpected character '{other}' in leaf spec"),
                    })
                }
            }
        }
        if leaves.is_empty() {
            return Err(ParseLeafSpecError {
                message: "empty leaf spec".to_owned(),
            });
        }
        if !leaves.len().is_power_of_two() {
            return Err(ParseLeafSpecError {
                message: format!("leaf count {} is not a power of two", leaves.len()),
            });
        }
        let num_vars = leaves.len().trailing_zeros() as usize;
        Ok(LeafSpec { leaves, num_vars })
    }

    /// Number of variables (log2 of the leaf count).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The leaves, leftmost (all-variables-zero) first.
    pub fn leaves(&self) -> &[Option<bool>] {
        &self.leaves
    }

    /// Builds `(f, c)` over variables `Var(0) … Var(num_vars-1)` of `bdd`.
    ///
    /// `f` is an arbitrary completion of the don't cares (we use 1, which is
    /// immaterial: all consumers immediately pair `f` with `c`). `c` is true
    /// exactly on the specified leaves.
    ///
    /// # Panics
    ///
    /// Panics if the manager declares fewer variables than the spec needs.
    pub fn build(&self, bdd: &mut Bdd) -> (Edge, Edge) {
        assert!(
            bdd.num_vars() >= self.num_vars,
            "manager has {} vars, spec needs {}",
            bdd.num_vars(),
            self.num_vars
        );
        let f = self.build_rec(bdd, 0, 0, true);
        let c = self.build_rec(bdd, 0, 0, false);
        (f, c)
    }

    /// Builds a completely specified function from a spec with no `d`s.
    ///
    /// # Panics
    ///
    /// Panics if the spec contains don't cares or the manager is too small.
    pub fn build_function(&self, bdd: &mut Bdd) -> Edge {
        assert!(
            self.leaves.iter().all(Option::is_some),
            "spec contains don't cares; use build()"
        );
        let (f, _) = self.build(bdd);
        f
    }

    fn build_rec(&self, bdd: &mut Bdd, depth: usize, offset: usize, value_of_f: bool) -> Edge {
        if depth == self.num_vars {
            let leaf = self.leaves[offset];
            let bit = if value_of_f {
                // f: don't cares completed to 1 (arbitrary).
                leaf.unwrap_or(true)
            } else {
                // c: true iff specified.
                leaf.is_some()
            };
            return bdd.constant(bit);
        }
        let half = 1usize << (self.num_vars - depth - 1);
        // Left half is var = 0 (else branch), right half var = 1 (then).
        let lo = self.build_rec(bdd, depth + 1, offset, value_of_f);
        let hi = self.build_rec(bdd, depth + 1, offset + half, value_of_f);
        bdd.mk(Var(depth as u32), hi, lo)
    }
}

impl Bdd {
    /// Convenience wrapper: parse a leaf spec and build `(f, c)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseLeafSpecError`] on malformed specs.
    ///
    /// # Example
    ///
    /// ```
    /// use bddmin_bdd::Bdd;
    /// # fn main() -> Result<(), bddmin_bdd::ParseLeafSpecError> {
    /// let mut bdd = Bdd::new(3);
    /// let (_f, c) = bdd.from_leaf_spec("1d d1 d0 0d")?;
    /// assert_eq!(bdd.sat_fraction(c), 0.5);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_leaf_spec(&mut self, input: &str) -> Result<(Edge, Edge), ParseLeafSpecError> {
        let spec = LeafSpec::parse(input)?;
        Ok(spec.build(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_shapes() {
        let s = LeafSpec::parse("(d1 01)").unwrap();
        assert_eq!(s.num_vars(), 2);
        assert_eq!(
            s.leaves(),
            &[None, Some(true), Some(false), Some(true)]
        );
        let s3 = LeafSpec::parse("1d d1 d0 0d").unwrap();
        assert_eq!(s3.num_vars(), 3);
        assert!(LeafSpec::parse("01x").is_err());
        assert!(LeafSpec::parse("011").is_err());
        assert!(LeafSpec::parse("").is_err());
    }

    #[test]
    fn leftmost_leaf_is_all_zero() {
        let mut bdd = Bdd::new(2);
        // Only the all-zero leaf is 1.
        let (f, c) = bdd.from_leaf_spec("1000").unwrap();
        assert!(c.is_one());
        assert!(bdd.eval(f, &[false, false]));
        assert!(!bdd.eval(f, &[false, true]));
        assert!(!bdd.eval(f, &[true, false]));
        assert!(!bdd.eval(f, &[true, true]));
    }

    #[test]
    fn second_variable_is_fastest() {
        let mut bdd = Bdd::new(2);
        // Leaves: 00 -> 0, 01 -> 1, 10 -> 0, 11 -> 1 == function x2.
        let (f, c) = bdd.from_leaf_spec("0101").unwrap();
        assert!(c.is_one());
        let x2 = bdd.var(Var(1));
        assert_eq!(f, x2);
    }

    #[test]
    fn care_function_marks_specified_leaves() {
        let mut bdd = Bdd::new(2);
        let (_, c) = bdd.from_leaf_spec("d1 01").unwrap();
        assert!(!bdd.eval(c, &[false, false])); // leftmost leaf is d
        assert!(bdd.eval(c, &[false, true]));
        assert!(bdd.eval(c, &[true, false]));
        assert!(bdd.eval(c, &[true, true]));
    }

    #[test]
    fn figure_1_instance() {
        // Fig. 1c annotates the decision tree of f over 3 variables; the
        // paper's f (1a) and c (1b) combine to a tree with two DC leaves.
        // We reconstruct a 3-var instance and sanity-check counts.
        let mut bdd = Bdd::new(3);
        let (f, c) = bdd.from_leaf_spec("01 0d 01 d1").unwrap();
        assert_eq!(bdd.sat_fraction(c), 0.75);
        let onset = bdd.and(f, c);
        assert!(bdd.sat_fraction(onset) > 0.0);
    }

    #[test]
    fn build_function_rejects_dc() {
        let mut bdd = Bdd::new(2);
        let s = LeafSpec::parse("0101").unwrap();
        let f = s.build_function(&mut bdd);
        assert_eq!(f, bdd.var(Var(1)));
        let sd = LeafSpec::parse("d101").unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sd.build_function(&mut bdd)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn one_var_specs() {
        let mut bdd = Bdd::new(1);
        let (f, c) = bdd.from_leaf_spec("01").unwrap();
        assert_eq!(f, bdd.var(Var(0)));
        assert!(c.is_one());
        let (_, c) = bdd.from_leaf_spec("dd").unwrap();
        assert!(c.is_zero());
    }
}
