//! Property-based tests for the BDD substrate.
//!
//! Strategy: generate random Boolean functions over a small variable set as
//! truth tables, build them through the public API, and check algebraic laws
//! and canonicity against direct truth-table evaluation.

use proptest::prelude::*;

use crate::edge::{Edge, Var};
use crate::manager::Bdd;

const NVARS: usize = 4;
const TABLE: usize = 1 << NVARS;

/// Builds the function with the given truth table (bit `i` = value on the
/// assignment whose bits are `i`, MSB = Var(0)).
fn from_table(bdd: &mut Bdd, table: u16) -> Edge {
    let mut f = Edge::ZERO;
    for row in 0..TABLE {
        if table >> row & 1 == 1 {
            let lits: Vec<(Var, bool)> = (0..NVARS)
                .map(|v| (Var(v as u32), row >> (NVARS - 1 - v) & 1 == 1))
                .collect();
            let cube = crate::cubes::Cube::new(lits).to_edge(bdd);
            f = bdd.or(f, cube);
        }
    }
    f
}

fn to_table(bdd: &Bdd, f: Edge) -> u16 {
    let mut t = 0u16;
    for row in 0..TABLE {
        let assign: Vec<bool> = (0..NVARS)
            .map(|v| row >> (NVARS - 1 - v) & 1 == 1)
            .collect();
        if bdd.eval(f, &assign) {
            t |= 1 << row;
        }
    }
    t
}

proptest! {
    #[test]
    fn truth_table_round_trip(table: u16) {
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, table);
        prop_assert_eq!(to_table(&bdd, f), table);
    }

    #[test]
    fn canonicity_equal_tables_equal_edges(table: u16) {
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, table);
        // Rebuild through a different construction path: minterms high-to-low.
        let mut g = Edge::ZERO;
        for row in (0..TABLE).rev() {
            if table >> row & 1 == 1 {
                let lits: Vec<(Var, bool)> = (0..NVARS)
                    .map(|v| (Var(v as u32), row >> (NVARS - 1 - v) & 1 == 1))
                    .collect();
                let cube = crate::cubes::Cube::new(lits).to_edge(&mut bdd);
                g = bdd.or(g, cube);
            }
        }
        prop_assert_eq!(f, g);
    }

    #[test]
    fn boolean_algebra_laws(ta: u16, tb: u16, tc: u16) {
        let mut bdd = Bdd::new(NVARS);
        let a = from_table(&mut bdd, ta);
        let b = from_table(&mut bdd, tb);
        let c = from_table(&mut bdd, tc);
        // Distributivity.
        let bc = bdd.or(b, c);
        let lhs = bdd.and(a, bc);
        let ab = bdd.and(a, b);
        let ac = bdd.and(a, c);
        let rhs = bdd.or(ab, ac);
        prop_assert_eq!(lhs, rhs);
        // De Morgan.
        let n_ab = bdd.and(a, b).complement();
        let na_or_nb = bdd.or(a.complement(), b.complement());
        prop_assert_eq!(n_ab, na_or_nb);
        // Double complement.
        prop_assert_eq!(a.complement().complement(), a);
        // XOR associativity.
        let x1 = bdd.xor(a, b);
        let x1c = bdd.xor(x1, c);
        let x2 = bdd.xor(b, c);
        let ax2 = bdd.xor(a, x2);
        prop_assert_eq!(x1c, ax2);
    }

    #[test]
    fn ite_matches_semantics(tf: u16, tg: u16, th: u16) {
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, tf);
        let g = from_table(&mut bdd, tg);
        let h = from_table(&mut bdd, th);
        let r = bdd.ite(f, g, h);
        let expect = (tf & tg) | (!tf & th);
        prop_assert_eq!(to_table(&bdd, r), expect);
    }

    #[test]
    fn shannon_decomposition(table: u16, var in 0u32..NVARS as u32) {
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, table);
        let f1 = bdd.cofactor(f, Var(var), true);
        let f0 = bdd.cofactor(f, Var(var), false);
        let v = bdd.var(Var(var));
        let rebuilt = bdd.ite(v, f1, f0);
        prop_assert_eq!(rebuilt, f);
        // Cofactors do not depend on the variable.
        prop_assert!(!bdd.depends_on(f1, Var(var)));
        prop_assert!(!bdd.depends_on(f0, Var(var)));
    }

    #[test]
    fn quantifier_duality(table: u16, var in 0u32..NVARS as u32) {
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, table);
        let cube = bdd.cube_of_vars(&[Var(var)]);
        let ex = bdd.exists(f, cube);
        let fa = bdd.forall(f, cube);
        // ∃x.f = f1 + f0 ; ∀x.f = f1·f0.
        let f1 = bdd.cofactor(f, Var(var), true);
        let f0 = bdd.cofactor(f, Var(var), false);
        prop_assert_eq!(ex, bdd.or(f1, f0));
        prop_assert_eq!(fa, bdd.and(f1, f0));
        // Duality: ¬∃x.f = ∀x.¬f.
        let nf = bdd.not(f);
        let fanf = bdd.forall(nf, cube);
        prop_assert_eq!(ex.complement(), fanf);
        // Containment: ∀x.f ≤ f ≤ ∃x.f.
        prop_assert!(bdd.implies_holds(fa, f));
        prop_assert!(bdd.implies_holds(f, ex));
    }

    #[test]
    fn constrain_restrict_are_covers(tf: u16, tc in 1u16..) {
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, tf);
        let c = from_table(&mut bdd, tc);
        prop_assume!(!c.is_zero());
        let onset = bdd.and(f, c);
        let nc = bdd.not(c);
        let upper = bdd.or(f, nc);
        for g in [bdd.constrain(f, c), bdd.restrict(f, c)] {
            prop_assert!(bdd.implies_holds(onset, g));
            prop_assert!(bdd.implies_holds(g, upper));
        }
    }

    #[test]
    fn constrain_image_property(tf: u16, tc in 1u16..) {
        // constrain agrees with f on the care set.
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, tf);
        let c = from_table(&mut bdd, tc);
        prop_assume!(!c.is_zero());
        let g = bdd.constrain(f, c);
        let gf = bdd.xor(g, f);
        let disagreement = bdd.and(gf, c);
        prop_assert!(disagreement.is_zero());
    }

    #[test]
    fn sat_fraction_additivity(ta: u16, tb: u16) {
        let mut bdd = Bdd::new(NVARS);
        let a = from_table(&mut bdd, ta);
        let b = from_table(&mut bdd, tb);
        let aub = bdd.or(a, b);
        let aib = bdd.and(a, b);
        let lhs = bdd.sat_fraction(aub) + bdd.sat_fraction(aib);
        let rhs = bdd.sat_fraction(a) + bdd.sat_fraction(b);
        prop_assert!((lhs - rhs).abs() < 1e-12);
        // Exact count against popcount.
        prop_assert_eq!(bdd.sat_count(a), ta.count_ones() as f64);
    }

    #[test]
    fn cubes_partition_onset(table: u16) {
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, table);
        let cubes: Vec<crate::cubes::Cube> = bdd.cubes(f).collect();
        // Union equals onset.
        let mut union = Edge::ZERO;
        let mut total = 0.0;
        for q in &cubes {
            let e = q.to_edge(&mut bdd);
            total += bdd.sat_fraction(e);
            union = bdd.or(union, e);
        }
        prop_assert_eq!(union, f);
        // BDD 1-paths are disjoint, so fractions add up exactly.
        prop_assert!((total - bdd.sat_fraction(f)).abs() < 1e-12);
    }

    #[test]
    fn gc_preserves_roots(ta: u16, tb: u16) {
        let mut bdd = Bdd::new(NVARS);
        let a = from_table(&mut bdd, ta);
        let b = from_table(&mut bdd, tb);
        let keep = bdd.xor(a, b);
        let table_before = to_table(&bdd, keep);
        let size_before = bdd.size(keep);
        bdd.collect_garbage(&[keep]);
        prop_assert_eq!(to_table(&bdd, keep), table_before);
        prop_assert_eq!(bdd.size(keep), size_before);
        // Rebuild after GC stays canonical.
        let a2 = from_table(&mut bdd, ta);
        let b2 = from_table(&mut bdd, tb);
        let keep2 = bdd.xor(a2, b2);
        prop_assert_eq!(keep2, keep);
    }

    #[test]
    fn support_is_exact(table: u16) {
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, table);
        let support = bdd.support(f);
        for v in 0..NVARS as u32 {
            let f1 = bdd.cofactor(f, Var(v), true);
            let f0 = bdd.cofactor(f, Var(v), false);
            let depends = f1 != f0;
            prop_assert_eq!(support.contains(&Var(v)), depends);
        }
    }

    #[test]
    fn size_is_minimal_under_reduction(table: u16) {
        // A canonical ROBDD never exceeds the unreduced decision-tree size.
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, table);
        prop_assert!(bdd.size(f) <= (1 << (NVARS + 1)) - 1 + 1);
        // And constants have size exactly 1.
        if table == 0 {
            prop_assert_eq!(bdd.size(f), 1);
        }
    }
}

proptest! {
    #[test]
    fn isop_interval_soundness(t_onset: u16, t_extra: u16) {
        let mut bdd = Bdd::new(NVARS);
        let lower = from_table(&mut bdd, t_onset);
        let extra = from_table(&mut bdd, t_extra);
        let upper = bdd.or(lower, extra);
        let isop = bdd.isop(lower, upper);
        prop_assert!(bdd.implies_holds(lower, isop.function));
        prop_assert!(bdd.implies_holds(isop.function, upper));
        // Cube list and function agree.
        let parts: Vec<Edge> = isop.cubes.iter().map(|c| c.to_edge(&mut bdd)).collect();
        let union = bdd.or_many(parts);
        prop_assert_eq!(union, isop.function);
        // Irredundancy: dropping any one cube uncovers part of lower.
        for skip in 0..isop.cubes.len() {
            let parts: Vec<Edge> = isop
                .cubes
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, c)| c.to_edge(&mut bdd))
                .collect();
            let partial = bdd.or_many(parts);
            prop_assert!(!bdd.implies_holds(lower, partial), "redundant cube");
        }
    }

    #[test]
    fn isop_exact_when_no_freedom(table: u16) {
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, table);
        let isop = bdd.isop(f, f);
        prop_assert_eq!(isop.function, f);
    }
}
