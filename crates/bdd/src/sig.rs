//! Bit-parallel semantic signatures.
//!
//! A **signature** of a function is its truth value on 64 fixed
//! pseudo-random variable assignments, packed into one `u64` (lane `i` =
//! value on assignment `i`). Signatures are exact evaluations, so they
//! are homomorphic in every Boolean connective: `sig(¬f) = ¬sig(f)`,
//! `sig(f·g) = sig(f) & sig(g)`, and so on, lane by lane. That makes a
//! signature mismatch a *proof* of functional difference — the cheap
//! refutation half of the classic simulate-then-prove discipline — while
//! a signature match proves nothing and must be confirmed by an exact
//! BDD check.
//!
//! The evaluator computes all 64 lanes in one bottom-up pass per function
//! with a per-node memo, so a batch of `n` functions over a shared DAG
//! costs one traversal of their union, not `64·n` single evaluations.
//! Complement edges are a lane-wise NOT, for free.
//!
//! Assignments are derived from an in-tree xorshift64* stream seeded by a
//! fixed constant, so signatures are deterministic across runs and
//! machines, and — because lane masks are keyed by **variable identity**,
//! not level — a function's signature is invariant under variable
//! reordering. A live evaluator is **not** reusable across garbage
//! collections or reorders, though: the memo is keyed by node slot, and
//! both rebuild or rewrite slots. Use an evaluator transiently — build
//! it, take the signatures you need, drop it before any operation that
//! can allocate, collect, or reorder.

use crate::edge::{Edge, NodeId};
use crate::manager::Bdd;

/// Number of assignments evaluated in parallel (the lanes of a `u64`).
pub const SIG_LANES: usize = 64;

/// Default seed of the assignment stream. Any fixed value works; this one
/// is shared by every caller so signatures agree across subsystems.
pub const SIG_SEED: u64 = 0x5157_BDD5_16BA_7C94;

/// xorshift64* step (same generator family as `bddmin_core::rng`,
/// duplicated here because the kernel crate sits below it).
fn xorshift64star(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Batch evaluator producing 64-bit semantic signatures of edges.
///
/// # Example
///
/// ```
/// use bddmin_bdd::{Bdd, SigEvaluator, Var};
///
/// let mut bdd = Bdd::new(3);
/// let a = bdd.var(Var(0));
/// let b = bdd.var(Var(1));
/// let ab = bdd.and(a, b);
/// let mut ev = SigEvaluator::for_bdd(&bdd);
/// let (sa, sb, sab) = (
///     ev.signature(&bdd, a),
///     ev.signature(&bdd, b),
///     ev.signature(&bdd, ab),
/// );
/// assert_eq!(sab, sa & sb); // exact evaluation is homomorphic
/// assert_eq!(ev.signature(&bdd, ab.complement()), !sab);
/// ```
#[derive(Debug)]
pub struct SigEvaluator {
    /// `masks[v]` holds the value of `Var(v)` in each of the 64 lanes.
    masks: Vec<u64>,
    /// Signature of the *regular* edge to each node slot; valid iff the
    /// matching bit of `computed` is set (0 is a legitimate signature).
    memo: Vec<u64>,
    computed: Vec<u64>,
}

impl SigEvaluator {
    /// Evaluator over `num_vars` variables with an explicit stream seed.
    pub fn new(num_vars: usize, seed: u64) -> SigEvaluator {
        // A zero state would freeze the xorshift stream; fold the seed
        // through a nonzero constant instead of special-casing callers.
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        if state == 0 {
            state = 0x9E37_79B9_7F4A_7C15;
        }
        let masks = (0..num_vars).map(|_| xorshift64star(&mut state)).collect();
        SigEvaluator {
            masks,
            memo: Vec::new(),
            computed: Vec::new(),
        }
    }

    /// Evaluator sized to `bdd` with the shared default seed.
    pub fn for_bdd(bdd: &Bdd) -> SigEvaluator {
        SigEvaluator::new(bdd.num_vars(), SIG_SEED)
    }

    /// The lane assignments of `var` (bit `i` = value in assignment `i`).
    pub fn var_mask(&self, var: usize) -> u64 {
        self.masks[var]
    }

    /// The 64-lane signature of `f`. Memoized per node, so repeated and
    /// DAG-sharing calls are cheap. `bdd` must be the manager the edge
    /// came from, unchanged since this evaluator's previous calls.
    pub fn signature(&mut self, bdd: &Bdd, f: Edge) -> u64 {
        let s = self.node_signature(bdd, f.node());
        if f.is_complemented() {
            !s
        } else {
            s
        }
    }

    fn is_computed(&self, slot: usize) -> bool {
        self.computed
            .get(slot >> 6)
            .is_some_and(|w| w >> (slot & 63) & 1 == 1)
    }

    fn record(&mut self, slot: usize, sig: u64) {
        if slot >= self.memo.len() {
            self.memo.resize(slot + 1, 0);
            self.computed.resize((slot >> 6) + 1, 0);
        }
        self.memo[slot] = sig;
        self.computed[slot >> 6] |= 1 << (slot & 63);
    }

    /// Signature of the regular edge to `node`, via an explicit stack so
    /// arbitrarily deep diagrams cannot overflow the call stack.
    fn node_signature(&mut self, bdd: &Bdd, node: NodeId) -> u64 {
        let slot = node.index();
        if self.is_computed(slot) {
            return self.memo[slot];
        }
        if node == NodeId::TERMINAL {
            self.record(slot, !0u64);
            return !0u64;
        }
        // Frames: (slot, children-visited?). Children are pushed first;
        // on the second visit both child signatures are memoized.
        let mut stack: Vec<(usize, bool)> = vec![(slot, false)];
        while let Some((cur, expanded)) = stack.pop() {
            if self.is_computed(cur) {
                continue;
            }
            let n = bdd.node(Edge::new(NodeId(cur as u32), false));
            if n.var.is_terminal() {
                self.record(cur, !0u64);
                continue;
            }
            let (hi_slot, lo_slot) = (n.hi.node().index(), n.lo.node().index());
            if !expanded {
                stack.push((cur, true));
                if !self.is_computed(hi_slot) {
                    stack.push((hi_slot, false));
                }
                if !self.is_computed(lo_slot) {
                    stack.push((lo_slot, false));
                }
                continue;
            }
            let hi = self.memo[hi_slot]; // hi edges are always regular
            let lo_raw = self.memo[lo_slot];
            let lo = if n.lo.is_complemented() { !lo_raw } else { lo_raw };
            // `n.var` is a level; the lane masks are per variable identity,
            // so the same function signs identically under any order. A
            // chain node ors in every skipped level above the decision at
            // `bot`: lanes where any chained variable is 1 are forced to 1.
            let mut or_mask = 0u64;
            for l in n.var.0..n.bot.0 {
                or_mask |= self.masks[bdd.var_at_level(crate::edge::Var(l)).index()];
            }
            let mask = self.masks[bdd.var_at_level(n.bot).index()];
            self.record(cur, or_mask | (!or_mask & ((mask & hi) | (!mask & lo))));
        }
        self.memo[slot]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Var;

    /// Evaluates `f` on one assignment the slow way.
    fn eval_point(bdd: &Bdd, f: Edge, assign: &dyn Fn(usize) -> bool) -> bool {
        let mut cur = f;
        loop {
            if cur.is_constant() {
                return cur.is_one();
            }
            let (hi, lo) = bdd.branches(cur);
            cur = if assign(bdd.var_of(cur).index()) { hi } else { lo };
        }
    }

    #[test]
    fn signatures_agree_with_pointwise_evaluation() {
        let mut bdd = Bdd::new(5);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let c = bdd.var(Var(2));
        let ab = bdd.and(a, b);
        let f = bdd.ite(c, ab, b.complement());
        let g = bdd.xor(f, a);
        let mut ev = SigEvaluator::for_bdd(&bdd);
        for e in [Edge::ONE, Edge::ZERO, a, b, c, ab, f, g, g.complement()] {
            let sig = ev.signature(&bdd, e);
            for lane in 0..SIG_LANES {
                let expected = eval_point(&bdd, e, &|v| ev.var_mask(v) >> lane & 1 == 1);
                assert_eq!(
                    sig >> lane & 1 == 1,
                    expected,
                    "lane {lane} of {e:?} disagrees with pointwise evaluation"
                );
            }
        }
    }

    #[test]
    fn signatures_are_homomorphic() {
        let mut bdd = Bdd::new(6);
        let xs: Vec<Edge> = (0..6).map(|i| bdd.var(Var(i))).collect();
        let f = bdd.and(xs[0], xs[3]);
        let g = bdd.or(xs[1], xs[5]);
        let fg_and = bdd.and(f, g);
        let fg_or = bdd.or(f, g);
        let fg_xor = bdd.xor(f, g);
        let mut ev = SigEvaluator::for_bdd(&bdd);
        let (sf, sg) = (ev.signature(&bdd, f), ev.signature(&bdd, g));
        assert_eq!(ev.signature(&bdd, fg_and), sf & sg);
        assert_eq!(ev.signature(&bdd, fg_or), sf | sg);
        assert_eq!(ev.signature(&bdd, fg_xor), sf ^ sg);
        assert_eq!(ev.signature(&bdd, f.complement()), !sf);
    }

    #[test]
    fn signatures_are_deterministic_across_evaluators() {
        let mut bdd = Bdd::new(4);
        let a = bdd.var(Var(0));
        let d = bdd.var(Var(3));
        let f = bdd.xor(a, d);
        let s1 = SigEvaluator::for_bdd(&bdd).signature(&bdd, f);
        let s2 = SigEvaluator::for_bdd(&bdd).signature(&bdd, f);
        assert_eq!(s1, s2);
        // A different seed gives (almost surely) different assignments.
        let s3 = SigEvaluator::new(4, SIG_SEED ^ 1).signature(&bdd, f);
        let _ = s3; // no equality claim either way — both are valid streams
    }

    #[test]
    fn constants_and_literals() {
        let mut bdd = Bdd::new(3);
        let b = bdd.var(Var(1));
        let mut ev = SigEvaluator::for_bdd(&bdd);
        assert_eq!(ev.signature(&bdd, Edge::ONE), !0u64);
        assert_eq!(ev.signature(&bdd, Edge::ZERO), 0u64);
        assert_eq!(ev.signature(&bdd, b), ev.var_mask(1));
        assert_eq!(ev.signature(&bdd, b.complement()), !ev.var_mask(1));
    }

    #[test]
    fn deep_chain_does_not_overflow_the_stack() {
        let n = 4000usize;
        let mut bdd = Bdd::new(n);
        let mut f = Edge::ONE;
        for i in (0..n).rev() {
            let v = bdd.var(Var(i as u32));
            f = bdd.and(v, f);
        }
        let mut ev = SigEvaluator::for_bdd(&bdd);
        let sig = ev.signature(&bdd, f);
        // The conjunction of all variables: lane i is 1 iff every mask has
        // bit i set — astronomically unlikely to be nonzero, but compute
        // the expected value exactly rather than assuming.
        let expected = (0..n).fold(!0u64, |acc, v| acc & ev.var_mask(v));
        assert_eq!(sig, expected);
    }
}
