//! Computed table: memoisation of BDD operations.

use std::collections::HashMap;

use crate::edge::Edge;

/// Operation tags used as part of computed-table keys.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum Op {
    Ite,
    Exists,
    Forall,
    Constrain,
    Restrict,
    Compose(u32),
}

/// A simple computed table mapping `(op, a, b, c)` to a result edge.
///
/// This plays the role of the caches in [1]; the paper's experimental
/// methodology ("we invoke the BDD garbage collector before each heuristic is
/// called to flush the caches") maps to [`ComputedTable::clear`].
#[derive(Debug, Default)]
pub(crate) struct ComputedTable {
    map: HashMap<(Op, Edge, Edge, Edge), Edge>,
    hits: u64,
    misses: u64,
}

impl ComputedTable {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn get(&mut self, op: Op, a: Edge, b: Edge, c: Edge) -> Option<Edge> {
        match self.map.get(&(op, a, b, c)) {
            Some(&r) => {
                self.hits += 1;
                Some(r)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    #[inline]
    pub(crate) fn insert(&mut self, op: Op, a: Edge, b: Edge, c: Edge, result: Edge) {
        self.map.insert((op, a, b, c), result);
    }

    pub(crate) fn clear(&mut self) {
        self.map.clear();
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }

    pub(crate) fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_clear() {
        let mut t = ComputedTable::new();
        assert_eq!(t.get(Op::Ite, Edge::ONE, Edge::ZERO, Edge::ONE), None);
        t.insert(Op::Ite, Edge::ONE, Edge::ZERO, Edge::ONE, Edge::ZERO);
        assert_eq!(
            t.get(Op::Ite, Edge::ONE, Edge::ZERO, Edge::ONE),
            Some(Edge::ZERO)
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
        t.clear();
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(Op::Ite, Edge::ONE, Edge::ZERO, Edge::ONE), None);
    }

    #[test]
    fn ops_are_distinguished() {
        let mut t = ComputedTable::new();
        t.insert(Op::Ite, Edge::ONE, Edge::ONE, Edge::ONE, Edge::ZERO);
        assert_eq!(t.get(Op::Exists, Edge::ONE, Edge::ONE, Edge::ONE), None);
        assert_eq!(
            t.get(Op::Compose(1), Edge::ONE, Edge::ONE, Edge::ONE),
            None
        );
        t.insert(Op::Compose(1), Edge::ONE, Edge::ONE, Edge::ONE, Edge::ONE);
        assert_eq!(
            t.get(Op::Compose(2), Edge::ONE, Edge::ONE, Edge::ONE),
            None
        );
    }
}
