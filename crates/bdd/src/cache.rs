//! Computed table: lossy memoisation of BDD operations.
//!
//! CUDD-style fixed-capacity cache: a power-of-two array of 2-way buckets
//! that **overwrites on collision**. Losing an entry only costs a
//! re-computation — `ite` and friends re-derive the same canonical result —
//! so the cache may be lossy without affecting correctness. In exchange:
//!
//! * memory is bounded (no unbounded `HashMap` growth during ITE storms),
//! * there are no rehash pauses on the hot path,
//! * [`ComputedTable::clear`] is O(1): a generation counter is bumped and
//!   stale entries die in place (the paper's between-heuristics cache flush
//!   becomes free).
//!
//! Hit/miss/eviction/occupancy counters feed [`BddStats`]
//! (crate::BddStats), keeping the paper's cache-flush methodology
//! observable.

use crate::edge::Edge;
use crate::util::mix64;

/// Operation tags used as part of computed-table keys.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum Op {
    Ite,
    Exists,
    Forall,
    Constrain,
    Restrict,
    Compose(u32),
}

impl Op {
    /// Injective encoding into a `u32` word: the five plain tags take
    /// 0..=4 and `Compose(v)` maps to `5 + 8v`, which never collides with
    /// a plain tag (it is ≥ 5) nor with another `Compose` (affine in `v`).
    #[inline]
    fn word(self) -> u32 {
        match self {
            Op::Ite => 0,
            Op::Exists => 1,
            Op::Forall => 2,
            Op::Constrain => 3,
            Op::Restrict => 4,
            Op::Compose(v) => {
                debug_assert!(v < (u32::MAX - 5) / 8, "variable index overflows op word");
                5 + 8 * v
            }
        }
    }
}

/// One cache entry: the full `(op, a, b, c)` key, the result, and the
/// generation it was written in. 24 bytes; a 2-way bucket is 48 bytes, so
/// a probe touches one cache line.
#[derive(Clone, Copy, Debug)]
struct Entry {
    op: u32,
    a: u32,
    b: u32,
    c: u32,
    result: u32,
    generation: u32,
}

const DEAD: Entry = Entry {
    op: 0,
    a: 0,
    b: 0,
    c: 0,
    result: 0,
    generation: 0,
};

/// Default cache capacity in entries (2-way buckets of two); 2^16 entries
/// = 1.5 MiB, enough for the paper-scale workloads while staying resident
/// in L2/L3.
const DEFAULT_LOG2_CAPACITY: u32 = 16;

/// The lossy computed table.
#[derive(Debug)]
pub(crate) struct ComputedTable {
    entries: Box<[Entry]>,
    /// `bucket_count - 1` where `bucket_count = capacity / 2`.
    bucket_mask: usize,
    /// Entries written in an earlier generation are invisible. Starts at 1
    /// so the zero-initialised array is empty.
    generation: u32,
    occupied: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Default for ComputedTable {
    fn default() -> Self {
        ComputedTable::with_log2_capacity(DEFAULT_LOG2_CAPACITY)
    }
}

impl ComputedTable {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// A cache with `2^log2` entry slots (minimum 2).
    pub(crate) fn with_log2_capacity(log2: u32) -> Self {
        let cap = 1usize << log2.max(1);
        ComputedTable {
            entries: vec![DEAD; cap].into_boxed_slice(),
            bucket_mask: (cap >> 1) - 1,
            generation: 1,
            occupied: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    #[inline]
    fn bucket(&self, op: u32, a: Edge, b: Edge, c: Edge) -> usize {
        let k0 = ((op as u64) << 32) | a.to_bits() as u64;
        let k1 = ((b.to_bits() as u64) << 32) | c.to_bits() as u64;
        (mix64(k0 ^ k1.rotate_left(23).wrapping_mul(0x9E37_79B9_7F4A_7C15)) as usize
            & self.bucket_mask)
            << 1
    }

    #[inline]
    pub(crate) fn get(&mut self, op: Op, a: Edge, b: Edge, c: Edge) -> Option<Edge> {
        let op = op.word();
        let i = self.bucket(op, a, b, c);
        for way in 0..2 {
            let e = self.entries[i + way];
            if e.generation == self.generation
                && e.op == op
                && e.a == a.to_bits()
                && e.b == b.to_bits()
                && e.c == c.to_bits()
            {
                self.hits += 1;
                if way == 1 {
                    // Promote to the primary way so the hot entry survives
                    // the next collision in this bucket.
                    self.entries.swap(i, i + 1);
                }
                return Some(Edge::from_bits(e.result));
            }
        }
        self.misses += 1;
        None
    }

    #[inline]
    pub(crate) fn insert(&mut self, op: Op, a: Edge, b: Edge, c: Edge, result: Edge) {
        let op = op.word();
        let i = self.bucket(op, a, b, c);
        let fresh = Entry {
            op,
            a: a.to_bits(),
            b: b.to_bits(),
            c: c.to_bits(),
            result: result.to_bits(),
            generation: self.generation,
        };
        // Pick the victim way: a stale/empty slot if there is one,
        // otherwise demote way 0 into way 1 (dropping way 1, the colder
        // entry, as the eviction victim).
        for way in 0..2 {
            let e = self.entries[i + way];
            if e.generation != self.generation {
                self.entries[i + way] = fresh;
                self.occupied += 1;
                return;
            }
            if e.op == op && e.a == fresh.a && e.b == fresh.b && e.c == fresh.c {
                // Same key re-inserted (recomputed after eviction elsewhere).
                self.entries[i + way] = fresh;
                return;
            }
        }
        self.entries[i + 1] = self.entries[i];
        self.entries[i] = fresh;
        self.evictions += 1;
    }

    /// O(1) flush: bump the generation so every entry becomes stale. On
    /// the (astronomically rare) u32 wrap the array is scrubbed once so
    /// ancient entries cannot resurrect.
    pub(crate) fn clear(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.entries.fill(DEAD);
            self.generation = 1;
        }
        self.occupied = 0;
    }

    /// Entries written in the current generation.
    pub(crate) fn len(&self) -> usize {
        self.occupied
    }

    /// Total entry capacity.
    pub(crate) fn capacity(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }

    pub(crate) fn misses(&self) -> u64 {
        self.misses
    }

    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_clear() {
        let mut t = ComputedTable::new();
        assert_eq!(t.get(Op::Ite, Edge::ONE, Edge::ZERO, Edge::ONE), None);
        t.insert(Op::Ite, Edge::ONE, Edge::ZERO, Edge::ONE, Edge::ZERO);
        assert_eq!(
            t.get(Op::Ite, Edge::ONE, Edge::ZERO, Edge::ONE),
            Some(Edge::ZERO)
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
        t.clear();
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(Op::Ite, Edge::ONE, Edge::ZERO, Edge::ONE), None);
    }

    #[test]
    fn ops_are_distinguished() {
        let mut t = ComputedTable::new();
        t.insert(Op::Ite, Edge::ONE, Edge::ONE, Edge::ONE, Edge::ZERO);
        assert_eq!(t.get(Op::Exists, Edge::ONE, Edge::ONE, Edge::ONE), None);
        assert_eq!(
            t.get(Op::Compose(1), Edge::ONE, Edge::ONE, Edge::ONE),
            None
        );
        t.insert(Op::Compose(1), Edge::ONE, Edge::ONE, Edge::ONE, Edge::ONE);
        assert_eq!(
            t.get(Op::Compose(2), Edge::ONE, Edge::ONE, Edge::ONE),
            None
        );
    }

    #[test]
    fn op_words_are_injective() {
        let words: Vec<u32> = [
            Op::Ite,
            Op::Exists,
            Op::Forall,
            Op::Constrain,
            Op::Restrict,
            Op::Compose(0),
            Op::Compose(1),
            Op::Compose(1000),
        ]
        .iter()
        .map(|o| o.word())
        .collect();
        let mut dedup = words.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), words.len());
    }

    #[test]
    fn collisions_evict_but_stay_bounded() {
        // A tiny 4-entry cache: hammer it with distinct keys; capacity and
        // occupancy must stay bounded and evictions must be counted.
        let mut t = ComputedTable::with_log2_capacity(2);
        assert_eq!(t.capacity(), 4);
        for i in 0..100u32 {
            let a = Edge::from_bits(i);
            t.insert(Op::Ite, a, Edge::ONE, Edge::ZERO, a);
        }
        assert!(t.len() <= t.capacity());
        assert!(t.evictions() > 0);
        // Whatever survives must be exact.
        for i in 0..100u32 {
            let a = Edge::from_bits(i);
            if let Some(r) = t.get(Op::Ite, a, Edge::ONE, Edge::ZERO) {
                assert_eq!(r, a);
            }
        }
    }

    #[test]
    fn generation_clear_is_total() {
        let mut t = ComputedTable::with_log2_capacity(4);
        for i in 0..16u32 {
            t.insert(Op::Ite, Edge::from_bits(i), Edge::ONE, Edge::ZERO, Edge::ONE);
        }
        let occupied = t.len();
        assert!(occupied > 0);
        t.clear();
        for i in 0..16u32 {
            assert_eq!(t.get(Op::Ite, Edge::from_bits(i), Edge::ONE, Edge::ZERO), None);
        }
        // Entries from before the flush must not be resurrected by
        // re-inserting a subset.
        t.insert(Op::Ite, Edge::from_bits(3), Edge::ONE, Edge::ZERO, Edge::ZERO);
        assert_eq!(
            t.get(Op::Ite, Edge::from_bits(3), Edge::ONE, Edge::ZERO),
            Some(Edge::ZERO)
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn way1_hit_promotes() {
        let mut t = ComputedTable::with_log2_capacity(1); // one bucket, 2 ways
        t.insert(Op::Ite, Edge::from_bits(10), Edge::ONE, Edge::ZERO, Edge::ONE);
        t.insert(Op::Ite, Edge::from_bits(20), Edge::ONE, Edge::ZERO, Edge::ZERO);
        // Entry 10 got demoted to way 1; hitting it must promote it back.
        assert_eq!(
            t.get(Op::Ite, Edge::from_bits(10), Edge::ONE, Edge::ZERO),
            Some(Edge::ONE)
        );
        // A third insert now evicts 20 (the cold one), not 10.
        t.insert(Op::Ite, Edge::from_bits(30), Edge::ONE, Edge::ZERO, Edge::ONE);
        assert_eq!(
            t.get(Op::Ite, Edge::from_bits(10), Edge::ONE, Edge::ZERO),
            Some(Edge::ONE)
        );
        assert_eq!(t.get(Op::Ite, Edge::from_bits(20), Edge::ONE, Edge::ZERO), None);
    }
}
