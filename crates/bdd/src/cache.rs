//! Computed table: lossy memoisation of BDD operations.
//!
//! CUDD-style cache: a power-of-two array of 2-way buckets that
//! **overwrites on collision**. Losing an entry only costs a
//! re-computation — `ite` and friends re-derive the same canonical result —
//! so the cache may be lossy without affecting correctness. In exchange:
//!
//! * memory is bounded (no unbounded `HashMap` growth during ITE storms),
//! * there are no rehash pauses on the hot path,
//! * [`ComputedTable::clear`] is O(1): a generation counter is bumped and
//!   stale entries die in place (the paper's between-heuristics cache flush
//!   becomes free).
//!
//! The capacity is **adaptive** in the CUDD style: when an epoch (the span
//! since the last growth decision) has seen more evictions than the table
//! has slots *and* enough hits to prove the cached results are being
//! reused, the table doubles — bounded by a hard `max_log2` ceiling and by
//! a memory budget the manager derives from the node-store size, so a tiny
//! workload never pays for a big cache. Growth rehashes only the current
//! generation's entries; the O(1) generation clear is unaffected.
//!
//! Hit/miss/eviction/occupancy counters — aggregate and per operation
//! class — feed [`BddStats`] (crate::BddStats), keeping the paper's
//! cache-flush methodology observable.

use crate::edge::Edge;
use crate::util::mix64;

/// Operation tags used as part of computed-table keys.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum Op {
    Ite,
    Exists,
    Forall,
    Constrain,
    Restrict,
    AndExists,
    Compose(u32),
}

impl Op {
    /// Injective encoding into a `u32` word: the plain tags take 0..=4
    /// and 6, while `Compose(v)` maps to `5 + 8v`, which never collides
    /// with a plain tag (it is ≡ 5 mod 8 and ≥ 5) nor with another
    /// `Compose` (affine in `v`).
    #[inline]
    fn word(self) -> u32 {
        match self {
            Op::Ite => 0,
            Op::Exists => 1,
            Op::Forall => 2,
            Op::Constrain => 3,
            Op::Restrict => 4,
            Op::AndExists => 6,
            Op::Compose(v) => {
                debug_assert!(v < (u32::MAX - 5) / 8, "variable index overflows op word");
                5 + 8 * v
            }
        }
    }

    /// Coarse operation class used for per-class hit/miss telemetry. All
    /// `Compose(v)` share one class; the key word above stays injective.
    #[inline]
    pub(crate) fn class(self) -> usize {
        match self {
            Op::Ite => 0,
            Op::Exists => 1,
            Op::Forall => 2,
            Op::Constrain => 3,
            Op::Restrict => 4,
            Op::Compose(_) => 5,
            Op::AndExists => 6,
        }
    }
}

/// Number of operation classes tracked by the per-class counters.
pub(crate) const OP_CLASS_COUNT: usize = 7;

/// Display names for the operation classes, indexed by [`Op::class`].
pub(crate) const OP_CLASS_NAMES: [&str; OP_CLASS_COUNT] = [
    "ite",
    "exists",
    "forall",
    "constrain",
    "restrict",
    "compose",
    "and_exists",
];

/// One cache entry: the full `(op, a, b, c)` key, the result, and the
/// generation it was written in. 24 bytes; a 2-way bucket is 48 bytes, so
/// a probe touches one cache line.
#[derive(Clone, Copy, Debug)]
struct Entry {
    op: u32,
    a: u32,
    b: u32,
    c: u32,
    result: u32,
    generation: u32,
}

const DEAD: Entry = Entry {
    op: 0,
    a: 0,
    b: 0,
    c: 0,
    result: 0,
    generation: 0,
};

/// Default starting cache capacity in entries (2-way buckets of two);
/// 2^16 entries = 1.5 MiB, resident in L2/L3 until the workload proves it
/// needs more.
pub(crate) const DEFAULT_LOG2_CAPACITY: u32 = 16;

/// Hard ceiling for adaptive growth: 2^18 entries = 6 MiB. Measured on the
/// `perf_smoke` ITE storm, throughput is flat from 2^16 to 2^18 and then
/// falls off a cliff (0.68x at 2^20): once the table outgrows the last-level
/// cache, every probe is a DRAM round-trip, and on GC-heavy workloads the
/// extra capacity buys almost no hits because most misses are compulsory
/// (first touch within a GC window). The ceiling therefore stops growth at
/// the locality knee; the manager's node-store budget binds first on small
/// managers.
pub(crate) const DEFAULT_MAX_LOG2_CAPACITY: u32 = 18;

/// The lossy computed table.
#[derive(Debug)]
pub(crate) struct ComputedTable {
    entries: Box<[Entry]>,
    /// `bucket_count - 1` where `bucket_count = capacity / 2`.
    bucket_mask: usize,
    /// Entries written in an earlier generation are invisible. Starts at 1
    /// so the zero-initialised array is empty.
    generation: u32,
    occupied: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Current capacity is `2^log2`; growth doubles until `max_log2`.
    log2: u32,
    max_log2: u32,
    /// Epoch counters, reset at every growth decision: growth requires
    /// both eviction pressure and hit reward within one epoch.
    epoch_hits: u64,
    epoch_evictions: u64,
    resizes: u64,
    class_hits: [u64; OP_CLASS_COUNT],
    class_misses: [u64; OP_CLASS_COUNT],
}

impl Default for ComputedTable {
    fn default() -> Self {
        ComputedTable::with_log2_capacity(DEFAULT_LOG2_CAPACITY)
    }
}

impl ComputedTable {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// A cache with `2^log2` entry slots (minimum 2), allowed to grow up
    /// to the default ceiling (or `log2` itself if that is larger).
    pub(crate) fn with_log2_capacity(log2: u32) -> Self {
        let log2 = log2.max(1);
        let cap = 1usize << log2;
        ComputedTable {
            entries: vec![DEAD; cap].into_boxed_slice(),
            bucket_mask: (cap >> 1) - 1,
            generation: 1,
            occupied: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            log2,
            max_log2: DEFAULT_MAX_LOG2_CAPACITY.max(log2),
            epoch_hits: 0,
            epoch_evictions: 0,
            resizes: 0,
            class_hits: [0; OP_CLASS_COUNT],
            class_misses: [0; OP_CLASS_COUNT],
        }
    }

    /// Reset to an empty table of `2^log2` entries that may adaptively
    /// grow up to `2^max_log2`. Setting `max_log2 == log2` pins the
    /// capacity (used by the cache-size invariance tests). Counters and
    /// resize history are preserved; the contents are dropped.
    pub(crate) fn configure(&mut self, log2: u32, max_log2: u32) {
        let log2 = log2.max(1);
        let cap = 1usize << log2;
        self.entries = vec![DEAD; cap].into_boxed_slice();
        self.bucket_mask = (cap >> 1) - 1;
        self.generation = 1;
        self.occupied = 0;
        self.log2 = log2;
        self.max_log2 = max_log2.max(log2);
        self.epoch_hits = 0;
        self.epoch_evictions = 0;
    }

    #[inline]
    fn mix_key(&self, op: u32, a: u32, b: u32, c: u32) -> usize {
        let k0 = ((op as u64) << 32) | a as u64;
        let k1 = ((b as u64) << 32) | c as u64;
        mix64(k0 ^ k1.rotate_left(23).wrapping_mul(0x9E37_79B9_7F4A_7C15)) as usize
    }

    #[inline]
    fn bucket(&self, op: u32, a: Edge, b: Edge, c: Edge) -> usize {
        (self.mix_key(op, a.to_bits(), b.to_bits(), c.to_bits()) & self.bucket_mask) << 1
    }

    #[inline]
    pub(crate) fn get(&mut self, op: Op, a: Edge, b: Edge, c: Edge) -> Option<Edge> {
        let class = op.class();
        let op = op.word();
        let i = self.bucket(op, a, b, c);
        for way in 0..2 {
            let e = self.entries[i + way];
            if e.generation == self.generation
                && e.op == op
                && e.a == a.to_bits()
                && e.b == b.to_bits()
                && e.c == c.to_bits()
            {
                self.hits += 1;
                self.epoch_hits += 1;
                self.class_hits[class] += 1;
                if way == 1 {
                    // Promote to the primary way so the hot entry survives
                    // the next collision in this bucket.
                    self.entries.swap(i, i + 1);
                }
                return Some(Edge::from_bits(e.result));
            }
        }
        self.misses += 1;
        self.class_misses[class] += 1;
        None
    }

    #[inline]
    pub(crate) fn insert(&mut self, op: Op, a: Edge, b: Edge, c: Edge, result: Edge) {
        let op = op.word();
        let i = self.bucket(op, a, b, c);
        let fresh = Entry {
            op,
            a: a.to_bits(),
            b: b.to_bits(),
            c: c.to_bits(),
            result: result.to_bits(),
            generation: self.generation,
        };
        // Pick the victim way: a stale/empty slot if there is one,
        // otherwise demote way 0 into way 1 (dropping way 1, the colder
        // entry, as the eviction victim).
        for way in 0..2 {
            let e = self.entries[i + way];
            if e.generation != self.generation {
                self.entries[i + way] = fresh;
                self.occupied += 1;
                return;
            }
            if e.op == op && e.a == fresh.a && e.b == fresh.b && e.c == fresh.c {
                // Same key re-inserted (recomputed after eviction elsewhere).
                self.entries[i + way] = fresh;
                return;
            }
        }
        self.entries[i + 1] = self.entries[i];
        self.entries[i] = fresh;
        self.evictions += 1;
        self.epoch_evictions += 1;
    }

    /// Adaptive growth check, called by the manager between top-level
    /// operations. The table doubles when the current epoch shows both
    /// *pressure* (more evictions than the table has slots — the contents
    /// turned over at least once) and *reward* (hits worth at least a
    /// quarter of the capacity — cached results are actually reused, so a
    /// bigger table converts evictions into hits). Growth is bounded by
    /// `max_log2` and by `budget_entries`, which the manager ties to the
    /// node-store size so small workloads keep a small cache. Returns
    /// whether the table grew.
    #[inline]
    pub(crate) fn maybe_grow(&mut self, budget_entries: usize) -> bool {
        if self.epoch_evictions < self.capacity() as u64 {
            return false;
        }
        let rewarded = self.epoch_hits >= (self.capacity() as u64) / 4;
        let bounded = self.log2 < self.max_log2 && self.capacity() < budget_entries;
        // Either way the epoch ends here, so a burst of pressure from long
        // ago cannot trigger a growth much later without fresh reward.
        self.epoch_hits = 0;
        self.epoch_evictions = 0;
        if !(rewarded && bounded) {
            return false;
        }
        self.grow();
        true
    }

    /// Double the capacity, rehashing the current generation's entries.
    /// The generation counter is preserved so an in-flight sequence of
    /// `clear` calls keeps its O(1) semantics.
    fn grow(&mut self) {
        self.log2 += 1;
        let cap = 1usize << self.log2;
        let old = std::mem::replace(&mut self.entries, vec![DEAD; cap].into_boxed_slice());
        self.bucket_mask = (cap >> 1) - 1;
        self.occupied = 0;
        for e in old.iter() {
            if e.generation != self.generation {
                continue;
            }
            let i = (self.mix_key(e.op, e.a, e.b, e.c) & self.bucket_mask) << 1;
            for way in 0..2 {
                if self.entries[i + way].generation != self.generation {
                    self.entries[i + way] = *e;
                    self.occupied += 1;
                    break;
                }
            }
            // Both ways already live: drop the entry. With the bucket count
            // doubling this is rare and only costs a recomputation.
        }
        self.resizes += 1;
    }

    /// Drops every current-generation entry that references a reclaimed
    /// node (`is_live` is indexed by node slot) and keeps the rest. Live
    /// nodes keep stable slots across a mark–sweep collection, so the
    /// surviving entries are still exact — while any entry touching a
    /// freed slot must die before the slot is recycled for an unrelated
    /// node. Called by the garbage collector in place of a full clear,
    /// preserving cross-collection reuse.
    pub(crate) fn scrub_dead(&mut self, is_live: &dyn Fn(usize) -> bool) {
        let generation = self.generation;
        let mut occupied = 0usize;
        for e in self.entries.iter_mut() {
            if e.generation != generation {
                continue;
            }
            let live = |bits: u32| is_live((bits >> 1) as usize);
            if live(e.a) && live(e.b) && live(e.c) && live(e.result) {
                occupied += 1;
            } else {
                *e = DEAD;
            }
        }
        self.occupied = occupied;
    }

    /// O(1) flush: bump the generation so every entry becomes stale. On
    /// the (astronomically rare) u32 wrap the array is scrubbed once so
    /// ancient entries cannot resurrect.
    pub(crate) fn clear(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.entries.fill(DEAD);
            self.generation = 1;
        }
        self.occupied = 0;
    }

    /// Entries written in the current generation.
    pub(crate) fn len(&self) -> usize {
        self.occupied
    }

    /// Total entry capacity.
    pub(crate) fn capacity(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }

    pub(crate) fn misses(&self) -> u64 {
        self.misses
    }

    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of adaptive doublings performed so far.
    pub(crate) fn resizes(&self) -> u64 {
        self.resizes
    }

    pub(crate) fn class_hits(&self) -> [u64; OP_CLASS_COUNT] {
        self.class_hits
    }

    pub(crate) fn class_misses(&self) -> [u64; OP_CLASS_COUNT] {
        self.class_misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_clear() {
        let mut t = ComputedTable::new();
        assert_eq!(t.get(Op::Ite, Edge::ONE, Edge::ZERO, Edge::ONE), None);
        t.insert(Op::Ite, Edge::ONE, Edge::ZERO, Edge::ONE, Edge::ZERO);
        assert_eq!(
            t.get(Op::Ite, Edge::ONE, Edge::ZERO, Edge::ONE),
            Some(Edge::ZERO)
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
        t.clear();
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(Op::Ite, Edge::ONE, Edge::ZERO, Edge::ONE), None);
    }

    #[test]
    fn ops_are_distinguished() {
        let mut t = ComputedTable::new();
        t.insert(Op::Ite, Edge::ONE, Edge::ONE, Edge::ONE, Edge::ZERO);
        assert_eq!(t.get(Op::Exists, Edge::ONE, Edge::ONE, Edge::ONE), None);
        assert_eq!(
            t.get(Op::Compose(1), Edge::ONE, Edge::ONE, Edge::ONE),
            None
        );
        t.insert(Op::Compose(1), Edge::ONE, Edge::ONE, Edge::ONE, Edge::ONE);
        assert_eq!(
            t.get(Op::Compose(2), Edge::ONE, Edge::ONE, Edge::ONE),
            None
        );
    }

    #[test]
    fn op_words_are_injective() {
        let words: Vec<u32> = [
            Op::Ite,
            Op::Exists,
            Op::Forall,
            Op::Constrain,
            Op::Restrict,
            Op::AndExists,
            Op::Compose(0),
            Op::Compose(1),
            Op::Compose(1000),
        ]
        .iter()
        .map(|o| o.word())
        .collect();
        let mut dedup = words.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), words.len());
    }

    #[test]
    fn collisions_evict_but_stay_bounded() {
        // A tiny 4-entry cache: hammer it with distinct keys; capacity and
        // occupancy must stay bounded and evictions must be counted.
        let mut t = ComputedTable::with_log2_capacity(2);
        assert_eq!(t.capacity(), 4);
        for i in 0..100u32 {
            let a = Edge::from_bits(i);
            t.insert(Op::Ite, a, Edge::ONE, Edge::ZERO, a);
        }
        assert!(t.len() <= t.capacity());
        assert!(t.evictions() > 0);
        // Whatever survives must be exact.
        for i in 0..100u32 {
            let a = Edge::from_bits(i);
            if let Some(r) = t.get(Op::Ite, a, Edge::ONE, Edge::ZERO) {
                assert_eq!(r, a);
            }
        }
    }

    #[test]
    fn generation_clear_is_total() {
        let mut t = ComputedTable::with_log2_capacity(4);
        for i in 0..16u32 {
            t.insert(Op::Ite, Edge::from_bits(i), Edge::ONE, Edge::ZERO, Edge::ONE);
        }
        let occupied = t.len();
        assert!(occupied > 0);
        t.clear();
        for i in 0..16u32 {
            assert_eq!(t.get(Op::Ite, Edge::from_bits(i), Edge::ONE, Edge::ZERO), None);
        }
        // Entries from before the flush must not be resurrected by
        // re-inserting a subset.
        t.insert(Op::Ite, Edge::from_bits(3), Edge::ONE, Edge::ZERO, Edge::ZERO);
        assert_eq!(
            t.get(Op::Ite, Edge::from_bits(3), Edge::ONE, Edge::ZERO),
            Some(Edge::ZERO)
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn way1_hit_promotes() {
        let mut t = ComputedTable::with_log2_capacity(1); // one bucket, 2 ways
        t.insert(Op::Ite, Edge::from_bits(10), Edge::ONE, Edge::ZERO, Edge::ONE);
        t.insert(Op::Ite, Edge::from_bits(20), Edge::ONE, Edge::ZERO, Edge::ZERO);
        // Entry 10 got demoted to way 1; hitting it must promote it back.
        assert_eq!(
            t.get(Op::Ite, Edge::from_bits(10), Edge::ONE, Edge::ZERO),
            Some(Edge::ONE)
        );
        // A third insert now evicts 20 (the cold one), not 10.
        t.insert(Op::Ite, Edge::from_bits(30), Edge::ONE, Edge::ZERO, Edge::ONE);
        assert_eq!(
            t.get(Op::Ite, Edge::from_bits(10), Edge::ONE, Edge::ZERO),
            Some(Edge::ONE)
        );
        assert_eq!(t.get(Op::Ite, Edge::from_bits(20), Edge::ONE, Edge::ZERO), None);
    }

    /// Drive a tiny table with a re-read working set until the growth
    /// conditions (pressure + reward) are met.
    fn hammer(t: &mut ComputedTable, keys: u32) {
        for _ in 0..64 {
            for i in 0..keys {
                let a = Edge::from_bits(i);
                if t.get(Op::Ite, a, Edge::ONE, Edge::ZERO).is_none() {
                    t.insert(Op::Ite, a, Edge::ONE, Edge::ZERO, a);
                    // Immediate re-read, like the diamond re-reads of a real
                    // recursion: supplies the hit reward for growth.
                    let _ = t.get(Op::Ite, a, Edge::ONE, Edge::ZERO);
                }
            }
        }
    }

    #[test]
    fn grows_under_pressure_and_preserves_entries() {
        let mut t = ComputedTable::with_log2_capacity(2);
        // Keep polling growth between batches, as the manager would.
        for _ in 0..32 {
            hammer(&mut t, 64);
            t.maybe_grow(1 << 20);
        }
        assert!(t.resizes() > 0, "sustained pressure must trigger growth");
        assert!(t.capacity() > 4);
        // Surviving entries must still resolve exactly after rehashing.
        for i in 0..64u32 {
            let a = Edge::from_bits(i);
            if let Some(r) = t.get(Op::Ite, a, Edge::ONE, Edge::ZERO) {
                assert_eq!(r, a);
            }
        }
    }

    #[test]
    fn growth_respects_budget_and_ceiling() {
        let mut t = ComputedTable::with_log2_capacity(2);
        for _ in 0..64 {
            hammer(&mut t, 256);
            // Budget of 4 entries: the table may never grow past it.
            t.maybe_grow(4);
        }
        assert_eq!(t.capacity(), 4);
        assert_eq!(t.resizes(), 0);

        // A pinned table (max_log2 == log2) never grows even with a huge
        // budget.
        let mut p = ComputedTable::with_log2_capacity(2);
        p.configure(2, 2);
        for _ in 0..64 {
            hammer(&mut p, 256);
            p.maybe_grow(1 << 20);
        }
        assert_eq!(p.capacity(), 4);
    }

    #[test]
    fn growth_preserves_generation_clear() {
        let mut t = ComputedTable::with_log2_capacity(2);
        for _ in 0..64 {
            hammer(&mut t, 64);
            t.maybe_grow(1 << 20);
        }
        assert!(t.resizes() > 0);
        t.clear();
        assert_eq!(t.len(), 0);
        for i in 0..64u32 {
            assert_eq!(t.get(Op::Ite, Edge::from_bits(i), Edge::ONE, Edge::ZERO), None);
        }
    }

    #[test]
    fn per_class_counters_track_ops() {
        let mut t = ComputedTable::new();
        t.insert(Op::Ite, Edge::ONE, Edge::ZERO, Edge::ONE, Edge::ZERO);
        let _ = t.get(Op::Ite, Edge::ONE, Edge::ZERO, Edge::ONE);
        let _ = t.get(Op::Constrain, Edge::ONE, Edge::ZERO, Edge::ONE);
        let hits = t.class_hits();
        let misses = t.class_misses();
        assert_eq!(hits[Op::Ite.class()], 1);
        assert_eq!(misses[Op::Constrain.class()], 1);
        assert_eq!(hits[Op::Compose(3).class()], 0);
        assert_eq!(t.hits(), hits.iter().sum::<u64>());
        assert_eq!(t.misses(), misses.iter().sum::<u64>());
    }
}
