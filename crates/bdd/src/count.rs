//! Size and satisfaction counting.

use std::collections::HashMap;
use std::fmt;

use crate::edge::{Edge, NodeId, Var};
use crate::manager::Bdd;
use crate::util::{Bitmap, FastBuild};

/// A satisfying-assignment count in exponent-carrying form:
/// `mantissa × 2^exp2`, with `mantissa` in `[1, 2)` (or exactly `0.0` for
/// the unsatisfiable function).
///
/// Plain `f64` counts overflow to infinity at 1024 variables and lose the
/// low bits long before that; this representation stays finite and keeps
/// f64 mantissa precision at any variable count. Convert with
/// [`SatCount::to_f64`] (saturating) or compare magnitudes with
/// [`SatCount::log2`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SatCount {
    /// Significand in `[1, 2)`, or `0.0` when the count is zero.
    pub mantissa: f64,
    /// Binary exponent.
    pub exp2: i64,
}

/// Exponent gap beyond which the smaller addend (or a `1 - ε`
/// complement) is below f64 mantissa resolution and is dropped. This is
/// exactly the precision plain f64 arithmetic would deliver, so the
/// representation is an *exponent-range* fix, not a precision upgrade.
const NEGLIGIBLE_EXP_GAP: i64 = 80;

impl SatCount {
    /// The count zero.
    pub const ZERO: SatCount = SatCount {
        mantissa: 0.0,
        exp2: 0,
    };
    /// The count one.
    pub const ONE: SatCount = SatCount {
        mantissa: 1.0,
        exp2: 0,
    };

    /// True for the zero count.
    pub fn is_zero(self) -> bool {
        self.mantissa == 0.0
    }

    /// Brings an `f64` value into normalized exponent-carrying form.
    fn normalize(value: f64, exp2: i64) -> SatCount {
        debug_assert!(value.is_finite() && value >= 0.0);
        if value == 0.0 {
            return SatCount::ZERO;
        }
        let (mut m, mut e) = (value, exp2);
        while m >= 2.0 {
            m /= 2.0;
            e += 1;
        }
        while m < 1.0 {
            m *= 2.0;
            e -= 1;
        }
        SatCount { mantissa: m, exp2: e }
    }

    /// The complement probability `1 - self` (valid only for values in
    /// `[0, 1]`, as produced by the satisfaction recursion).
    fn one_minus(self) -> SatCount {
        if self.is_zero() {
            return SatCount::ONE;
        }
        if self == SatCount::ONE {
            return SatCount::ZERO;
        }
        if self.exp2 < -NEGLIGIBLE_EXP_GAP {
            // 1 - ε rounds to 1 at f64 precision.
            return SatCount::ONE;
        }
        SatCount::normalize(1.0 - self.mantissa * 2f64.powi(self.exp2 as i32), 0)
    }

    /// The average `(a + b) / 2` of two counts.
    fn half_sum(a: SatCount, b: SatCount) -> SatCount {
        if a.is_zero() {
            return SatCount::normalize(b.mantissa, b.exp2 - 1);
        }
        if b.is_zero() {
            return SatCount::normalize(a.mantissa, a.exp2 - 1);
        }
        let (hi, lo) = if a.exp2 >= b.exp2 { (a, b) } else { (b, a) };
        let gap = hi.exp2 - lo.exp2;
        if gap > NEGLIGIBLE_EXP_GAP {
            return SatCount::normalize(hi.mantissa, hi.exp2 - 1);
        }
        let sum = hi.mantissa + lo.mantissa * 2f64.powi(-(gap as i32));
        SatCount::normalize(sum, hi.exp2 - 1)
    }

    /// Converts to `f64`, saturating to `f64::INFINITY` above `~2^1024`
    /// and to `0.0` below the subnormal range (never `NaN`).
    pub fn to_f64(self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        if self.exp2 > f64::MAX_EXP as i64 {
            return f64::INFINITY;
        }
        if self.exp2 < f64::MIN_EXP as i64 - 53 {
            return 0.0;
        }
        self.mantissa * 2f64.powi(self.exp2 as i32)
    }

    /// Base-2 logarithm of the count (`-inf` for zero).
    pub fn log2(self) -> f64 {
        if self.is_zero() {
            return f64::NEG_INFINITY;
        }
        self.mantissa.log2() + self.exp2 as f64
    }
}

impl fmt::Display for SatCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            f.write_str("0")
        } else {
            write!(f, "{}*2^{}", self.mantissa, self.exp2)
        }
    }
}

impl Bdd {
    /// The size `|f|`: number of nodes in the BDD of `f`, **including the
    /// constant node**, matching the paper's metric (`|ONE| = |ZERO| = 1`,
    /// `|x| = 2`).
    ///
    /// # Example
    ///
    /// ```
    /// use bddmin_bdd::{Bdd, Edge, Var};
    /// let mut bdd = Bdd::new(2);
    /// assert_eq!(bdd.size(Edge::ONE), 1);
    /// let a = bdd.var(Var(0));
    /// let b = bdd.var(Var(1));
    /// assert_eq!(bdd.size(a), 2);
    /// let f = bdd.xor(a, b);
    /// // With complement edges, xor over 2 variables needs 2 decision
    /// // nodes plus the constant node.
    /// assert_eq!(bdd.size(f), 3);
    /// ```
    pub fn size(&self, f: Edge) -> usize {
        self.size_many(&[f])
    }

    /// Number of distinct nodes in the shared BDD of several functions,
    /// including the constant node (counted once).
    pub fn size_many(&self, fs: &[Edge]) -> usize {
        if self.chain_mode {
            return self.size_many_chain(fs);
        }
        let mut seen = Bitmap::new(self.nodes.len());
        let mut count = 0;
        let mut stack: Vec<Edge> = fs.iter().map(|e| e.regular()).collect();
        while let Some(e) = stack.pop() {
            if !seen.insert(e.node().index()) {
                continue;
            }
            count += 1;
            if e.is_constant() {
                continue;
            }
            let n = self.node(e);
            stack.push(n.hi.regular());
            stack.push(n.lo.regular());
        }
        // The terminal is always reachable from any edge (possibly via
        // complement), so make sure it is counted exactly once.
        if !seen.get(NodeId::TERMINAL.index()) {
            count += 1;
        }
        count
    }

    /// Plain-equivalent size in chain mode: a chain node `⟨t‥b, hi, lo⟩`
    /// stands for the plain nodes `(vt, b, hi, lo)` for every `vt` in
    /// `t..=b`, and two chain nodes with overlapping ranges *share* their
    /// decompressed tails — so the count dedups virtual keys, not node
    /// slots. This keeps `size` equal to what a plain-mode manager reports
    /// for the same function, which in turn keeps every size-based
    /// minimization decision (clamp-to-`|f|`, best-of selection)
    /// mode-invariant.
    fn size_many_chain(&self, fs: &[Edge]) -> usize {
        let mut seen = Bitmap::new(self.nodes.len());
        let mut keys: std::collections::HashSet<(u32, u32, u32, u32), FastBuild> =
            std::collections::HashSet::default();
        let mut stack: Vec<Edge> = fs.iter().map(|e| e.regular()).collect();
        while let Some(e) = stack.pop() {
            if e.is_constant() || !seen.insert(e.node().index()) {
                continue;
            }
            let n = self.node(e);
            for vt in n.var.0..=n.bot.0 {
                keys.insert((vt, n.bot.0, n.hi.to_bits(), n.lo.to_bits()));
            }
            stack.push(n.hi.regular());
            stack.push(n.lo.regular());
        }
        // Plus the constant node, reachable from any edge, counted once.
        keys.len() + 1
    }

    /// The fraction of the full variable space `B^n` on which `f` is true,
    /// in `[0, 1]`.
    ///
    /// Because the fraction is taken over *all* declared variables, it is
    /// invariant under adding variables outside the support; the paper's
    /// `c_onset_size` percentage (onset over the space of the support union)
    /// equals `sat_fraction(c) * 100`.
    ///
    /// # Example
    ///
    /// ```
    /// use bddmin_bdd::{Bdd, Var};
    /// let mut bdd = Bdd::new(2);
    /// let a = bdd.var(Var(0));
    /// let b = bdd.var(Var(1));
    /// let f = bdd.and(a, b);
    /// assert_eq!(bdd.sat_fraction(f), 0.25);
    /// ```
    pub fn sat_fraction(&self, f: Edge) -> f64 {
        let mut memo: HashMap<NodeId, f64, FastBuild> = HashMap::default();
        let p = self.frac_rec(f.regular(), &mut memo);
        if f.is_complemented() {
            1.0 - p
        } else {
            p
        }
    }

    fn frac_rec(&self, e: Edge, memo: &mut HashMap<NodeId, f64, FastBuild>) -> f64 {
        debug_assert!(!e.is_complemented());
        if e.is_constant() {
            return 1.0;
        }
        if let Some(&p) = memo.get(&e.node()) {
            return p;
        }
        let n = self.node(e);
        let ph = self.frac_rec(n.hi.regular(), memo);
        let ph = if n.hi.is_complemented() { 1.0 - ph } else { ph };
        let pl = self.frac_rec(n.lo.regular(), memo);
        let pl = if n.lo.is_complemented() { 1.0 - pl } else { pl };
        let mut p = 0.5 * ph + 0.5 * pl;
        // Chain levels fold the plain per-level recurrence (hi = ONE, so
        // p_hi = 1.0) once per spanned or-level, bottom-up — bit-identical
        // to the f64 computation a plain-mode manager performs on the
        // decompressed nodes.
        for _ in n.var.0..n.bot.0 {
            p = 0.5 * 1.0 + 0.5 * p;
        }
        memo.insert(e.node(), p);
        p
    }

    /// Number of satisfying assignments over all `n` declared variables,
    /// as `f64`.
    ///
    /// A documented approximation: exact for counts below `~2^53`,
    /// mantissa-rounded above, and **saturating to `f64::INFINITY`**
    /// beyond `~2^1024`. It is computed through the exponent-carrying
    /// [`Bdd::sat_count_scaled`], so — unlike the naive
    /// `fraction × 2^n` formula — small counts in huge spaces (e.g. the
    /// single assignment of a 1200-literal cube) come out exact instead
    /// of degenerating to `0 × inf = NaN`.
    pub fn sat_count(&self, f: Edge) -> f64 {
        self.sat_count_scaled(f).to_f64()
    }

    /// Number of satisfying assignments over all `n` declared variables
    /// in exponent-carrying form, finite at any variable count.
    ///
    /// # Example
    ///
    /// ```
    /// use bddmin_bdd::{Bdd, Var};
    /// let mut bdd = Bdd::new(2000);
    /// let a = bdd.var(Var(0));
    /// let count = bdd.sat_count_scaled(a); // 2^1999 assignments
    /// assert_eq!((count.mantissa, count.exp2), (1.0, 1999));
    /// ```
    pub fn sat_count_scaled(&self, f: Edge) -> SatCount {
        let mut memo: HashMap<NodeId, SatCount, FastBuild> = HashMap::default();
        let p = self.prob_rec(f.regular(), &mut memo);
        let p = if f.is_complemented() { p.one_minus() } else { p };
        if p.is_zero() {
            return SatCount::ZERO;
        }
        SatCount {
            mantissa: p.mantissa,
            exp2: p.exp2 + self.num_vars() as i64,
        }
    }

    /// Satisfaction probability of the **regular** function at `e`, in
    /// exponent-carrying form.
    fn prob_rec(&self, e: Edge, memo: &mut HashMap<NodeId, SatCount, FastBuild>) -> SatCount {
        debug_assert!(!e.is_complemented());
        if e.is_constant() {
            return SatCount::ONE;
        }
        if let Some(&p) = memo.get(&e.node()) {
            return p;
        }
        let n = self.node(e);
        let ph = self.prob_rec(n.hi.regular(), memo);
        let ph = if n.hi.is_complemented() { ph.one_minus() } else { ph };
        let pl = self.prob_rec(n.lo.regular(), memo);
        let pl = if n.lo.is_complemented() { pl.one_minus() } else { pl };
        let mut p = SatCount::half_sum(ph, pl);
        // Chain levels fold the plain recurrence with the hi = ONE
        // probability, bottom-up (see `frac_rec`): bit-identical to the
        // plain-mode computation over the decompressed nodes.
        for _ in n.var.0..n.bot.0 {
            p = SatCount::half_sum(SatCount::ONE, p);
        }
        memo.insert(e.node(), p);
        p
    }

    /// The paper's `c_onset_size`: percentage of onset points of `f` in the
    /// space spanned by the union of the supports of the given functions
    /// (which equals the fraction over the full space, as points outside the
    /// support contribute proportionally).
    pub fn onset_percentage(&self, f: Edge) -> f64 {
        self.sat_fraction(f) * 100.0
    }

    /// Counts the nodes of `f` rooted at each level: `result[i]` is the
    /// number of nodes at position `i` of the **current variable order**
    /// (use [`Bdd::var_at_level`] to translate positions to identities);
    /// the constant node is not included.
    pub fn level_profile(&self, f: Edge) -> Vec<usize> {
        let mut profile = vec![0usize; self.num_vars()];
        let mut seen = Bitmap::new(self.nodes.len());
        let mut stack = vec![f.regular()];
        if self.chain_mode {
            // Plain-equivalent profile: one virtual node per spanned level,
            // deduped by virtual key (see `size_many_chain`).
            let mut keys: std::collections::HashSet<(u32, u32, u32, u32), FastBuild> =
                std::collections::HashSet::default();
            while let Some(e) = stack.pop() {
                if e.is_constant() || !seen.insert(e.node().index()) {
                    continue;
                }
                let n = self.node(e);
                for vt in n.var.0..=n.bot.0 {
                    if keys.insert((vt, n.bot.0, n.hi.to_bits(), n.lo.to_bits())) {
                        profile[vt as usize] += 1;
                    }
                }
                stack.push(n.hi.regular());
                stack.push(n.lo.regular());
            }
            return profile;
        }
        while let Some(e) = stack.pop() {
            if e.is_constant() || !seen.insert(e.node().index()) {
                continue;
            }
            let n = self.node(e);
            profile[n.var.index()] += 1;
            stack.push(n.hi.regular());
            stack.push(n.lo.regular());
        }
        profile
    }

    /// Number of nodes of `f` strictly **below** level `level`
    /// (the paper's `N_i(g)`), excluding the constant node.
    pub fn nodes_below_level(&self, f: Edge, level: Var) -> usize {
        let mut count = 0;
        let mut seen = Bitmap::new(self.nodes.len());
        let mut stack = vec![f.regular()];
        if self.chain_mode {
            // Plain-equivalent count: virtual nodes with top strictly below
            // `level`, deduped by key (see `size_many_chain`). A chain
            // straddling the boundary contributes only its below-boundary
            // part.
            let mut keys: std::collections::HashSet<(u32, u32, u32, u32), FastBuild> =
                std::collections::HashSet::default();
            while let Some(e) = stack.pop() {
                if e.is_constant() || !seen.insert(e.node().index()) {
                    continue;
                }
                let n = self.node(e);
                for vt in n.var.0.max(level.0 + 1)..=n.bot.0 {
                    if keys.insert((vt, n.bot.0, n.hi.to_bits(), n.lo.to_bits())) {
                        count += 1;
                    }
                }
                stack.push(n.hi.regular());
                stack.push(n.lo.regular());
            }
            return count;
        }
        while let Some(e) = stack.pop() {
            if e.is_constant() || !seen.insert(e.node().index()) {
                continue;
            }
            let n = self.node(e);
            if n.var > level {
                count += 1;
            }
            stack.push(n.hi.regular());
            stack.push(n.lo.regular());
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_paper_convention() {
        let mut bdd = Bdd::new(3);
        assert_eq!(bdd.size(Edge::ONE), 1);
        assert_eq!(bdd.size(Edge::ZERO), 1);
        let a = bdd.var(Var(0));
        assert_eq!(bdd.size(a), 2);
        assert_eq!(bdd.size(bdd.not(a)), 2);
        let b = bdd.var(Var(1));
        let c = bdd.var(Var(2));
        let x = bdd.xor(a, b);
        let f = bdd.xor(x, c);
        // Parity over 3 vars with complement edges: 1 node per level + const.
        assert_eq!(bdd.size(f), 4);
    }

    #[test]
    fn size_many_shares() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let f = bdd.and(a, b);
        let g = bdd.or(a, b);
        let each = bdd.size(f) + bdd.size(g);
        let shared = bdd.size_many(&[f, g]);
        assert!(shared < each);
        assert_eq!(bdd.size_many(&[f, f]), bdd.size(f));
        assert_eq!(bdd.size_many(&[]), 1);
    }

    #[test]
    fn sat_fraction_basics() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        assert_eq!(bdd.sat_fraction(Edge::ONE), 1.0);
        assert_eq!(bdd.sat_fraction(Edge::ZERO), 0.0);
        assert_eq!(bdd.sat_fraction(a), 0.5);
        let ab = bdd.and(a, b);
        assert_eq!(bdd.sat_fraction(ab), 0.25);
        let aob = bdd.or(a, b);
        assert_eq!(bdd.sat_fraction(aob), 0.75);
        assert_eq!(bdd.sat_count(ab), 2.0); // 2 of 8 assignments
    }

    #[test]
    fn sat_count_survives_huge_variable_spaces() {
        // Regression: `fraction × 2^n` overflowed to `inf` at ≥1024
        // variables, and deep cubes degenerated to `0 × inf = NaN`.
        let mut bdd = Bdd::new(1200);
        let vars: Vec<Var> = (0..1200).map(Var).collect();
        let cube = bdd.cube_of_vars(&vars);
        // The full cube has exactly one satisfying assignment.
        assert_eq!(bdd.sat_count(cube), 1.0);
        let one = bdd.sat_count_scaled(cube);
        assert_eq!((one.mantissa, one.exp2), (1.0, 0));
        // A single variable is true on half the space: 2^1199 assignments.
        let a = bdd.var(Var(0));
        let half = bdd.sat_count_scaled(a);
        assert_eq!((half.mantissa, half.exp2), (1.0, 1199));
        assert_eq!(half.log2(), 1199.0);
        // The f64 view saturates above ~2^1024 (documented), never NaN.
        assert!(bdd.sat_count(a).is_infinite());
        assert!(!bdd.sat_count(a).is_nan());
        // ¬cube has 2^1200 - 1 assignments, which is 2^1200 at f64
        // mantissa precision.
        let nc = bdd.not(cube);
        let big = bdd.sat_count_scaled(nc);
        assert_eq!((big.mantissa, big.exp2), (1.0, 1200));
        // Constants behave.
        assert!(bdd.sat_count_scaled(Edge::ZERO).is_zero());
        assert_eq!(bdd.sat_count(Edge::ZERO), 0.0);
        assert_eq!(bdd.sat_count_scaled(Edge::ONE).exp2, 1200);
    }

    #[test]
    fn sat_count_scaled_matches_f64_on_small_spaces() {
        let mut bdd = Bdd::new(6);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let c = bdd.var(Var(2));
        let ab = bdd.and(a, b);
        let f = bdd.xor(ab, c);
        for g in [a, ab, f, bdd.not(f), Edge::ONE, Edge::ZERO] {
            let scaled = bdd.sat_count_scaled(g).to_f64();
            let frac = bdd.sat_fraction(g) * 64.0;
            assert!((scaled - frac).abs() < 1e-9, "{scaled} vs {frac}");
        }
        assert_eq!(SatCount::ZERO.to_string(), "0");
        assert_eq!(bdd.sat_count_scaled(a).to_string(), "1*2^5");
    }

    #[test]
    fn sat_fraction_complement() {
        let mut bdd = Bdd::new(4);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let f = bdd.and(a, b);
        let nf = bdd.not(f);
        assert!((bdd.sat_fraction(f) + bdd.sat_fraction(nf) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn onset_percentage_support_invariance() {
        // Adding unused variables must not change the percentage.
        let mut small = Bdd::new(2);
        let a = small.var(Var(0));
        let b = small.var(Var(1));
        let f_small = small.and(a, b);
        let mut big = Bdd::new(10);
        let a = big.var(Var(0));
        let b = big.var(Var(1));
        let f_big = big.and(a, b);
        assert_eq!(
            small.onset_percentage(f_small),
            big.onset_percentage(f_big)
        );
    }

    #[test]
    fn level_profile_counts() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let c = bdd.var(Var(2));
        let bc = bdd.xor(b, c);
        let f = bdd.ite(a, bc, b);
        let profile = bdd.level_profile(f);
        assert_eq!(profile.len(), 3);
        assert_eq!(profile[0], 1);
        assert!(profile[1] >= 1);
        assert_eq!(profile.iter().sum::<usize>() + 1, bdd.size(f));
    }

    #[test]
    fn nodes_below_level_matches_profile() {
        let mut bdd = Bdd::new(4);
        let vars: Vec<Edge> = (0..4).map(|i| bdd.var(Var(i))).collect();
        let f = {
            let x01 = bdd.xor(vars[0], vars[1]);
            let x23 = bdd.and(vars[2], vars[3]);
            bdd.or(x01, x23)
        };
        let profile = bdd.level_profile(f);
        for lvl in 0..4u32 {
            let below: usize = profile[(lvl as usize + 1)..].iter().sum();
            assert_eq!(bdd.nodes_below_level(f, Var(lvl)), below);
        }
        assert_eq!(
            bdd.nodes_below_level(f, Var(3)),
            0,
            "nothing below the bottom level"
        );
    }
}
