//! Size and satisfaction counting.

use std::collections::HashMap;

use crate::edge::{Edge, NodeId, Var};
use crate::manager::Bdd;
use crate::util::{Bitmap, FastBuild};

impl Bdd {
    /// The size `|f|`: number of nodes in the BDD of `f`, **including the
    /// constant node**, matching the paper's metric (`|ONE| = |ZERO| = 1`,
    /// `|x| = 2`).
    ///
    /// # Example
    ///
    /// ```
    /// use bddmin_bdd::{Bdd, Edge, Var};
    /// let mut bdd = Bdd::new(2);
    /// assert_eq!(bdd.size(Edge::ONE), 1);
    /// let a = bdd.var(Var(0));
    /// let b = bdd.var(Var(1));
    /// assert_eq!(bdd.size(a), 2);
    /// let f = bdd.xor(a, b);
    /// // With complement edges, xor over 2 variables needs 2 decision
    /// // nodes plus the constant node.
    /// assert_eq!(bdd.size(f), 3);
    /// ```
    pub fn size(&self, f: Edge) -> usize {
        self.size_many(&[f])
    }

    /// Number of distinct nodes in the shared BDD of several functions,
    /// including the constant node (counted once).
    pub fn size_many(&self, fs: &[Edge]) -> usize {
        let mut seen = Bitmap::new(self.nodes.len());
        let mut count = 0;
        let mut stack: Vec<Edge> = fs.iter().map(|e| e.regular()).collect();
        while let Some(e) = stack.pop() {
            if !seen.insert(e.node().index()) {
                continue;
            }
            count += 1;
            if e.is_constant() {
                continue;
            }
            let n = self.node(e);
            stack.push(n.hi.regular());
            stack.push(n.lo.regular());
        }
        // The terminal is always reachable from any edge (possibly via
        // complement), so make sure it is counted exactly once.
        if !seen.get(NodeId::TERMINAL.index()) {
            count += 1;
        }
        count
    }

    /// The fraction of the full variable space `B^n` on which `f` is true,
    /// in `[0, 1]`.
    ///
    /// Because the fraction is taken over *all* declared variables, it is
    /// invariant under adding variables outside the support; the paper's
    /// `c_onset_size` percentage (onset over the space of the support union)
    /// equals `sat_fraction(c) * 100`.
    ///
    /// # Example
    ///
    /// ```
    /// use bddmin_bdd::{Bdd, Var};
    /// let mut bdd = Bdd::new(2);
    /// let a = bdd.var(Var(0));
    /// let b = bdd.var(Var(1));
    /// let f = bdd.and(a, b);
    /// assert_eq!(bdd.sat_fraction(f), 0.25);
    /// ```
    pub fn sat_fraction(&self, f: Edge) -> f64 {
        let mut memo: HashMap<NodeId, f64, FastBuild> = HashMap::default();
        let p = self.frac_rec(f.regular(), &mut memo);
        if f.is_complemented() {
            1.0 - p
        } else {
            p
        }
    }

    fn frac_rec(&self, e: Edge, memo: &mut HashMap<NodeId, f64, FastBuild>) -> f64 {
        debug_assert!(!e.is_complemented());
        if e.is_constant() {
            return 1.0;
        }
        if let Some(&p) = memo.get(&e.node()) {
            return p;
        }
        let n = self.node(e);
        let ph = self.frac_rec(n.hi.regular(), memo);
        let ph = if n.hi.is_complemented() { 1.0 - ph } else { ph };
        let pl = self.frac_rec(n.lo.regular(), memo);
        let pl = if n.lo.is_complemented() { 1.0 - pl } else { pl };
        let p = 0.5 * ph + 0.5 * pl;
        memo.insert(e.node(), p);
        p
    }

    /// Number of satisfying assignments over all `n` declared variables,
    /// as `f64` (exact for small spaces, approximate beyond ~2^53).
    pub fn sat_count(&self, f: Edge) -> f64 {
        self.sat_fraction(f) * 2f64.powi(self.num_vars() as i32)
    }

    /// The paper's `c_onset_size`: percentage of onset points of `f` in the
    /// space spanned by the union of the supports of the given functions
    /// (which equals the fraction over the full space, as points outside the
    /// support contribute proportionally).
    pub fn onset_percentage(&self, f: Edge) -> f64 {
        self.sat_fraction(f) * 100.0
    }

    /// Counts the nodes of `f` rooted at each level: `result[i]` is the
    /// number of nodes labelled `Var(i)`; the constant node is not included.
    pub fn level_profile(&self, f: Edge) -> Vec<usize> {
        let mut profile = vec![0usize; self.num_vars()];
        let mut seen = Bitmap::new(self.nodes.len());
        let mut stack = vec![f.regular()];
        while let Some(e) = stack.pop() {
            if e.is_constant() || !seen.insert(e.node().index()) {
                continue;
            }
            let n = self.node(e);
            profile[n.var.index()] += 1;
            stack.push(n.hi.regular());
            stack.push(n.lo.regular());
        }
        profile
    }

    /// Number of nodes of `f` strictly **below** level `level`
    /// (the paper's `N_i(g)`), excluding the constant node.
    pub fn nodes_below_level(&self, f: Edge, level: Var) -> usize {
        let mut count = 0;
        let mut seen = Bitmap::new(self.nodes.len());
        let mut stack = vec![f.regular()];
        while let Some(e) = stack.pop() {
            if e.is_constant() || !seen.insert(e.node().index()) {
                continue;
            }
            let n = self.node(e);
            if n.var > level {
                count += 1;
            }
            stack.push(n.hi.regular());
            stack.push(n.lo.regular());
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_paper_convention() {
        let mut bdd = Bdd::new(3);
        assert_eq!(bdd.size(Edge::ONE), 1);
        assert_eq!(bdd.size(Edge::ZERO), 1);
        let a = bdd.var(Var(0));
        assert_eq!(bdd.size(a), 2);
        assert_eq!(bdd.size(bdd.not(a)), 2);
        let b = bdd.var(Var(1));
        let c = bdd.var(Var(2));
        let x = bdd.xor(a, b);
        let f = bdd.xor(x, c);
        // Parity over 3 vars with complement edges: 1 node per level + const.
        assert_eq!(bdd.size(f), 4);
    }

    #[test]
    fn size_many_shares() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let f = bdd.and(a, b);
        let g = bdd.or(a, b);
        let each = bdd.size(f) + bdd.size(g);
        let shared = bdd.size_many(&[f, g]);
        assert!(shared < each);
        assert_eq!(bdd.size_many(&[f, f]), bdd.size(f));
        assert_eq!(bdd.size_many(&[]), 1);
    }

    #[test]
    fn sat_fraction_basics() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        assert_eq!(bdd.sat_fraction(Edge::ONE), 1.0);
        assert_eq!(bdd.sat_fraction(Edge::ZERO), 0.0);
        assert_eq!(bdd.sat_fraction(a), 0.5);
        let ab = bdd.and(a, b);
        assert_eq!(bdd.sat_fraction(ab), 0.25);
        let aob = bdd.or(a, b);
        assert_eq!(bdd.sat_fraction(aob), 0.75);
        assert_eq!(bdd.sat_count(ab), 2.0); // 2 of 8 assignments
    }

    #[test]
    fn sat_fraction_complement() {
        let mut bdd = Bdd::new(4);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let f = bdd.and(a, b);
        let nf = bdd.not(f);
        assert!((bdd.sat_fraction(f) + bdd.sat_fraction(nf) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn onset_percentage_support_invariance() {
        // Adding unused variables must not change the percentage.
        let mut small = Bdd::new(2);
        let a = small.var(Var(0));
        let b = small.var(Var(1));
        let f_small = small.and(a, b);
        let mut big = Bdd::new(10);
        let a = big.var(Var(0));
        let b = big.var(Var(1));
        let f_big = big.and(a, b);
        assert_eq!(
            small.onset_percentage(f_small),
            big.onset_percentage(f_big)
        );
    }

    #[test]
    fn level_profile_counts() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let c = bdd.var(Var(2));
        let bc = bdd.xor(b, c);
        let f = bdd.ite(a, bc, b);
        let profile = bdd.level_profile(f);
        assert_eq!(profile.len(), 3);
        assert_eq!(profile[0], 1);
        assert!(profile[1] >= 1);
        assert_eq!(profile.iter().sum::<usize>() + 1, bdd.size(f));
    }

    #[test]
    fn nodes_below_level_matches_profile() {
        let mut bdd = Bdd::new(4);
        let vars: Vec<Edge> = (0..4).map(|i| bdd.var(Var(i))).collect();
        let f = {
            let x01 = bdd.xor(vars[0], vars[1]);
            let x23 = bdd.and(vars[2], vars[3]);
            bdd.or(x01, x23)
        };
        let profile = bdd.level_profile(f);
        for lvl in 0..4u32 {
            let below: usize = profile[(lvl as usize + 1)..].iter().sum();
            assert_eq!(bdd.nodes_below_level(f, Var(lvl)), below);
        }
        assert_eq!(
            bdd.nodes_below_level(f, Var(3)),
            0,
            "nothing below the bottom level"
        );
    }
}
