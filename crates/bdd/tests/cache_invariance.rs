//! Cache-size invariance of the public operation results.
//!
//! The computed table and the minimization memo are *lossy* accelerators:
//! every memoized recursion is a deterministic function of its key, so the
//! table capacity — and any mid-sequence flush — may change only *speed*,
//! never *results*. Because a subproblem's first computation can never be a
//! cache hit (in any manager) and recomputations allocate no new nodes
//! (hash-consing finds the existing ones), two managers driven by the same
//! operation sequence allocate nodes in the same order. The tests therefore
//! compare raw [`Edge`] bits, the strongest possible form of agreement.

use bddmin_bdd::{Bdd, Edge, Var};

/// xorshift64* (same generator the workspace uses elsewhere; inlined here
/// because `bddmin-bdd` sits below `bddmin-core` in the dependency order).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn pick(&mut self, n: usize) -> usize {
        ((self.next() as u128 * n as u128) >> 64) as usize
    }
}

const NUM_VARS: usize = 10;
const STEPS: usize = 400;

/// Runs a fixed pseudo-random script of every cached public operation,
/// optionally flushing all manager caches every `flush_every` steps.
/// Returns every produced edge, in order.
fn run_script(bdd: &mut Bdd, seed: u64, flush_every: Option<usize>) -> Vec<Edge> {
    let mut rng = Rng::new(seed);
    let mut pool: Vec<Edge> = (0..NUM_VARS as u32).map(|v| bdd.var(Var(v))).collect();
    pool.push(Edge::ONE);
    pool.push(Edge::ZERO);
    let mut outputs = Vec::with_capacity(STEPS);
    for step in 0..STEPS {
        if let Some(k) = flush_every {
            if step % k == k - 1 {
                bdd.clear_caches();
            }
        }
        let a = pool[rng.pick(pool.len())];
        let b = pool[rng.pick(pool.len())];
        let c = pool[rng.pick(pool.len())];
        let v = Var(rng.pick(NUM_VARS) as u32);
        let op = rng.pick(16);
        let r = match op {
            0 => bdd.ite(a, b, c),
            1 => bdd.and(a, b),
            2 => bdd.or(a, b),
            3 => bdd.xor(a, b),
            4 => bdd.xnor(a, b),
            5 => bdd.implies(a, b),
            6 => bdd.diff(a, b),
            7 => bdd.nand(a, b),
            8 => bdd.nor(a, b),
            9..=11 => {
                let vars = {
                    let w = Var(rng.pick(NUM_VARS) as u32);
                    bdd.cube_of_vars(&[v, w])
                };
                match op {
                    9 => bdd.exists(a, vars),
                    10 => bdd.forall(a, vars),
                    _ => bdd.and_exists(a, b, vars),
                }
            }
            12 => {
                if c.is_zero() {
                    bdd.constrain(a, Edge::ONE)
                } else {
                    bdd.constrain(a, c)
                }
            }
            13 => {
                if c.is_zero() {
                    bdd.restrict(a, Edge::ONE)
                } else {
                    bdd.restrict(a, c)
                }
            }
            14 => bdd.compose(a, v, b),
            15 => bdd.cofactor(a, v, rng.next() & 1 == 1),
            _ => unreachable!(),
        };
        pool.push(r);
        outputs.push(r);
    }
    outputs
}

/// A manager with pinned cache geometry (`max == initial`, so the adaptive
/// policy can never resize it away from the configuration under test).
fn manager_with(cache_log2: u32, memo_log2: u32) -> Bdd {
    let mut bdd = Bdd::new(NUM_VARS);
    bdd.set_auto_gc(false);
    bdd.configure_cache(cache_log2, cache_log2);
    bdd.configure_min_memo(memo_log2, memo_log2);
    bdd
}

#[test]
fn tiny_and_huge_caches_agree_bit_for_bit() {
    for seed in [0x1994_DAC0, 0xBDD_CAFE, 7] {
        let mut tiny = manager_with(4, 4);
        let mut huge = manager_with(20, 16);
        let out_tiny = run_script(&mut tiny, seed, None);
        let out_huge = run_script(&mut huge, seed, None);
        assert_eq!(out_tiny, out_huge, "results diverged for seed {seed:#x}");
        // The tiny table must actually have been under pressure, or the
        // test proves nothing.
        assert!(
            tiny.stats().cache_evictions > 0,
            "script too small to stress a 16-entry cache"
        );
    }
}

#[test]
fn adaptive_default_matches_pinned_tiny() {
    // The default manager grows its tables mid-sequence; growth must be
    // just as invisible as any other capacity difference.
    let mut adaptive = Bdd::new(NUM_VARS);
    adaptive.set_auto_gc(false);
    let mut tiny = manager_with(4, 4);
    let out_a = run_script(&mut adaptive, 0x5EED, None);
    let out_t = run_script(&mut tiny, 0x5EED, None);
    assert_eq!(out_a, out_t);
}

#[test]
fn mid_sequence_flushes_are_invisible() {
    // Flush one manager aggressively, the other never: identical results.
    for flush in [3, 17, 64] {
        let mut flushed = manager_with(12, 12);
        let mut steady = manager_with(12, 12);
        let out_f = run_script(&mut flushed, 0x0F1A_54ED, Some(flush));
        let out_s = run_script(&mut steady, 0x0F1A_54ED, None);
        assert_eq!(out_f, out_s, "flush every {flush} changed results");
    }
}

#[test]
fn isop_is_capacity_invariant() {
    // `isop` memoizes per invocation but its operands flow through the
    // shared caches; the cover it extracts must not depend on capacity.
    let run = |cache_log2: u32, memo_log2: u32| {
        let mut bdd = manager_with(cache_log2, memo_log2);
        let outs = run_script(&mut bdd, 123, None);
        let lower = bdd.and(outs[STEPS - 1], outs[STEPS - 2]);
        let upper = bdd.or(outs[STEPS - 1], outs[STEPS - 2]);
        let cover = bdd.isop(lower, upper);
        (outs, cover.len())
    };
    let (outs_tiny, cubes_tiny) = run(4, 4);
    let (outs_huge, cubes_huge) = run(20, 16);
    assert_eq!(outs_tiny, outs_huge);
    assert_eq!(cubes_tiny, cubes_huge);
}
