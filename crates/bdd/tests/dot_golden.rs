//! Golden-file tests for the DOT (Graphviz) exporter.
//!
//! `to_dot` output is deterministic: node ids are allocation-ordered and the
//! traversal is an explicit stack, so the rendered text is a stable artifact
//! worth pinning. Each test builds a small shared BDD, renders it, and
//! compares byte-for-byte against a committed golden file in
//! `tests/golden/`. Set `UPDATE_GOLDEN=1` to regenerate the files after an
//! intentional format change.

use std::path::Path;

use bddmin_bdd::{Bdd, Var};

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "DOT output for {name} drifted from the golden file; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

/// XOR forces complemented edges under complement normalization, and the
/// negated root exercises a complemented function edge. The golden file
/// pins the `odot` arrowheads on both.
#[test]
fn golden_complement_edges() {
    let mut bdd = Bdd::with_names(&["a", "b"]);
    let a = bdd.var(Var(0));
    let b = bdd.var(Var(1));
    let f = bdd.xor(a, b);
    let nf = bdd.not(f);
    let dot = bdd.to_dot(&[("f", f), ("nf", nf)]);
    assert!(dot.contains("odot"), "xor must render complement dots");
    check_golden("complement_edges.dot", &dot);
}

/// An or-chain over consecutive variables fuses into a single chain node in
/// chain-reduced mode. The golden file pins the double-bordered
/// (`peripheries=2`) range-labelled rendering.
#[test]
fn golden_chain_nodes() {
    let mut bdd = Bdd::with_names_chained(&["a", "b", "c", "d", "e"]);
    let d = bdd.var(Var(3));
    let e = bdd.var(Var(4));
    let mut f = bdd.and(d, e);
    for i in (0..3).rev() {
        let v = bdd.var(Var(i));
        f = bdd.or(v, f);
    }
    let dot = bdd.to_dot(&[("f", f)]);
    assert!(
        dot.contains("peripheries=2"),
        "or-chain must render a double-bordered chain node"
    );
    assert!(
        dot.contains(".."),
        "chain node label must show its level range"
    );
    check_golden("chain_nodes.dot", &dot);
}

/// The same function rendered from a plain manager has no chain nodes —
/// this golden pins the uncompressed shape so the two files document the
/// representation difference side by side.
#[test]
fn golden_chain_nodes_plain_counterpart() {
    let mut bdd = Bdd::with_names(&["a", "b", "c", "d", "e"]);
    let d = bdd.var(Var(3));
    let e = bdd.var(Var(4));
    let mut f = bdd.and(d, e);
    for i in (0..3).rev() {
        let v = bdd.var(Var(i));
        f = bdd.or(v, f);
    }
    let dot = bdd.to_dot(&[("f", f)]);
    assert!(
        !dot.contains("peripheries=2"),
        "plain manager must not produce chain nodes"
    );
    check_golden("plain_counterpart.dot", &dot);
}
