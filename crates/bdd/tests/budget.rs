//! Governor behavior: budgets, checked cancellation, and the recursion
//! depth guard.

use std::time::Instant;

use bddmin_bdd::{Bdd, Budget, BudgetKind, Edge, Var};

/// Two interleaved positive cubes over `n` variables (even levels and odd
/// levels). Built bottom-up without recursion, so construction works at
/// any depth; conjoining them forces a recursion as deep as the order.
fn interleaved_cubes(bdd: &mut Bdd, n: u32) -> (Edge, Edge) {
    let even: Vec<Var> = (0..n).step_by(2).map(Var).collect();
    let odd: Vec<Var> = (1..n).step_by(2).map(Var).collect();
    (bdd.cube_of_vars(&even), bdd.cube_of_vars(&odd))
}

fn parity(bdd: &mut Bdd, vars: std::ops::Range<u32>) -> Edge {
    let mut f = Edge::ZERO;
    for i in vars {
        let v = bdd.var(Var(i));
        f = bdd.xor(f, v);
    }
    f
}

#[test]
fn unbudgeted_checked_ops_match_infallible_ones() {
    let mut bdd = Bdd::new(8);
    let f = parity(&mut bdd, 0..8);
    let x = bdd.var(Var(0));
    let plain = bdd.and(f, x);
    bdd.clear_caches();
    let checked = bdd.try_and(f, x).unwrap();
    assert_eq!(plain, checked, "checked and unchecked paths are the same recursion");
}

#[test]
fn step_budget_trips_deterministically() {
    let run = || {
        let mut bdd = Bdd::new(16);
        let f = parity(&mut bdd, 0..16);
        let g = parity(&mut bdd, 8..16);
        bdd.clear_caches();
        bdd.set_budget(Budget::default().steps(10));
        let err = bdd.try_ite(f, g, Edge::ZERO).unwrap_err();
        (err.kind, bdd.steps_used())
    };
    let (kind1, steps1) = run();
    let (kind2, steps2) = run();
    assert_eq!(kind1, BudgetKind::Steps);
    assert_eq!((kind1, steps1), (kind2, steps2), "trip point is deterministic");
    assert_eq!(steps1, 11, "fails on the first step past the limit");
}

#[test]
fn sufficient_budget_is_byte_identical() {
    let mut bdd = Bdd::new(12);
    let f = parity(&mut bdd, 0..12);
    let g = parity(&mut bdd, 6..12);
    let reference = bdd.and(f, g);
    bdd.clear_caches();
    bdd.set_budget(Budget::default().steps(1_000_000).nodes(1 << 20));
    let governed = bdd.try_and(f, g).expect("budget is ample");
    assert_eq!(governed, reference);
    bdd.clear_budget();
}

#[test]
fn node_ceiling_trips_only_on_fresh_allocation() {
    let mut bdd = Bdd::new(8);
    let f = parity(&mut bdd, 0..8);
    let g = parity(&mut bdd, 4..8);
    let built = bdd.and(f, g); // allocate everything needed once
    let live = {
        let s = bdd.stats();
        s.live_nodes
    };
    bdd.clear_caches();
    bdd.set_budget(Budget::default().nodes(live));
    // Recomputing an already-present function allocates nothing: the
    // unique table's find-or-add hits every time.
    assert_eq!(bdd.try_and(f, g), Ok(built));
    // A genuinely new function must allocate and trips the ceiling.
    let h = parity(&mut bdd, 2..7);
    let err = bdd.try_xor(built, h).unwrap_err();
    assert_eq!(err.kind, BudgetKind::Nodes);
    bdd.clear_budget();
}

#[test]
fn expired_deadline_cancels_promptly() {
    let mut bdd = Bdd::new(12);
    let f = parity(&mut bdd, 0..12);
    let g = parity(&mut bdd, 3..9);
    bdd.clear_caches();
    bdd.set_budget(Budget::default().deadline(Instant::now()));
    let err = bdd.try_and(f, g).unwrap_err();
    assert_eq!(err.kind, BudgetKind::Time);
    bdd.clear_budget();
    assert!(bdd.try_and(f, g).is_ok());
}

#[test]
fn aborted_operation_leaves_manager_consistent() {
    let mut bdd = Bdd::new(16);
    let f = parity(&mut bdd, 0..16);
    let g = parity(&mut bdd, 8..16);
    bdd.clear_caches();
    bdd.set_budget(Budget::default().steps(5));
    assert!(bdd.try_and(f, g).is_err());
    bdd.clear_budget();
    // The abort left no wrong cache entries and no broken structures:
    // the same op now completes and agrees with a fresh manager.
    let r = bdd.and(f, g);
    let mut fresh = Bdd::new(16);
    let ff = parity(&mut fresh, 0..16);
    let gf = parity(&mut fresh, 8..16);
    let rf = fresh.and(ff, gf);
    assert_eq!(bdd.size(r), fresh.size(rf));
    for bits in 0..(1u32 << 16) {
        if bits % 257 != 0 {
            continue; // sample the space
        }
        let assign: Vec<bool> = (0..16).map(|i| bits & (1 << i) != 0).collect();
        assert_eq!(bdd.eval(r, &assign), fresh.eval(rf, &assign));
    }
}

#[test]
fn depth_guard_converts_stack_overflow_into_error() {
    // Regression: conjoining two interleaved 4000-level cubes recurses
    // ~4000 frames deep — enough to overflow a 2 MiB debug test-thread
    // stack before the guard existed.
    let mut bdd = Bdd::new(4000);
    let (even, odd) = interleaved_cubes(&mut bdd, 4000);
    let err = bdd.try_and(even, odd).unwrap_err();
    assert_eq!(err.kind, BudgetKind::Depth);
}

#[test]
#[should_panic(expected = "resource budget exceeded")]
fn unchecked_deep_recursion_panics_cleanly() {
    let mut bdd = Bdd::new(4000);
    let (even, odd) = interleaved_cubes(&mut bdd, 4000);
    let _ = bdd.and(even, odd); // clean panic, not a stack overflow abort
}

#[test]
fn shallow_functions_never_hit_the_depth_guard() {
    let mut bdd = Bdd::new(1400);
    let (even, odd) = interleaved_cubes(&mut bdd, 1400);
    let both = bdd.try_and(even, odd).expect("1400 levels fit under the guard");
    let all: Vec<Var> = (0..1400).map(Var).collect();
    assert_eq!(both, bdd.cube_of_vars(&all));
}
