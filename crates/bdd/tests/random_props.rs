//! Randomized property tests for the BDD substrate, ported from the
//! feature-gated `proptest` suite (`src/proptests.rs`) to the in-tree
//! [`XorShift64`] generator so they run under plain `cargo test -q` in
//! the offline container. Same strategy: random truth tables over a
//! small variable set, built through the public API and checked against
//! direct truth-table evaluation. Fixed seeds keep every run identical;
//! a failure message always includes the offending table(s).

use bddmin_bdd::{Bdd, Cube, Edge, Var};
use bddmin_core::rng::XorShift64;

const NVARS: usize = 4;
const TABLE: usize = 1 << NVARS;
const CASES: usize = 64;

/// Builds the function with the given truth table (bit `i` = value on
/// the assignment whose bits are `i`, MSB = `Var(0)`).
fn from_table(bdd: &mut Bdd, table: u16) -> Edge {
    let mut f = Edge::ZERO;
    for row in 0..TABLE {
        if table >> row & 1 == 1 {
            let lits: Vec<(Var, bool)> = (0..NVARS)
                .map(|v| (Var(v as u32), row >> (NVARS - 1 - v) & 1 == 1))
                .collect();
            let cube = Cube::new(lits).to_edge(bdd);
            f = bdd.or(f, cube);
        }
    }
    f
}

fn to_table(bdd: &Bdd, f: Edge) -> u16 {
    let mut t = 0u16;
    for row in 0..TABLE {
        let assign: Vec<bool> = (0..NVARS)
            .map(|v| row >> (NVARS - 1 - v) & 1 == 1)
            .collect();
        if bdd.eval(f, &assign) {
            t |= 1 << row;
        }
    }
    t
}

#[test]
fn truth_table_round_trip_and_canonicity() {
    let mut rng = XorShift64::seed_from_u64(0xB0D);
    for _ in 0..CASES {
        let table = rng.gen_u16();
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, table);
        assert_eq!(to_table(&bdd, f), table, "round trip of {table:#06x}");
        // Rebuild through a different construction path: minterms
        // high-to-low must land on the identical edge.
        let mut g = Edge::ZERO;
        for row in (0..TABLE).rev() {
            if table >> row & 1 == 1 {
                let lits: Vec<(Var, bool)> = (0..NVARS)
                    .map(|v| (Var(v as u32), row >> (NVARS - 1 - v) & 1 == 1))
                    .collect();
                let cube = Cube::new(lits).to_edge(&mut bdd);
                g = bdd.or(g, cube);
            }
        }
        assert_eq!(f, g, "canonicity of {table:#06x}");
    }
}

#[test]
fn boolean_algebra_laws() {
    let mut rng = XorShift64::seed_from_u64(0xA16EB2A);
    for _ in 0..CASES {
        let (ta, tb, tc) = (rng.gen_u16(), rng.gen_u16(), rng.gen_u16());
        let mut bdd = Bdd::new(NVARS);
        let a = from_table(&mut bdd, ta);
        let b = from_table(&mut bdd, tb);
        let c = from_table(&mut bdd, tc);
        // Distributivity.
        let bc = bdd.or(b, c);
        let lhs = bdd.and(a, bc);
        let ab = bdd.and(a, b);
        let ac = bdd.and(a, c);
        let rhs = bdd.or(ab, ac);
        assert_eq!(lhs, rhs, "distributivity on {ta:#06x} {tb:#06x} {tc:#06x}");
        // De Morgan.
        let n_ab = bdd.and(a, b).complement();
        let na_or_nb = bdd.or(a.complement(), b.complement());
        assert_eq!(n_ab, na_or_nb, "De Morgan on {ta:#06x} {tb:#06x}");
        // Double complement.
        assert_eq!(a.complement().complement(), a);
        // XOR associativity.
        let x1 = bdd.xor(a, b);
        let x1c = bdd.xor(x1, c);
        let x2 = bdd.xor(b, c);
        let ax2 = bdd.xor(a, x2);
        assert_eq!(x1c, ax2, "xor associativity on {ta:#06x} {tb:#06x} {tc:#06x}");
    }
}

#[test]
fn ite_matches_semantics() {
    let mut rng = XorShift64::seed_from_u64(0x17E);
    for _ in 0..CASES {
        let (tf, tg, th) = (rng.gen_u16(), rng.gen_u16(), rng.gen_u16());
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, tf);
        let g = from_table(&mut bdd, tg);
        let h = from_table(&mut bdd, th);
        let r = bdd.ite(f, g, h);
        let expect = (tf & tg) | (!tf & th);
        assert_eq!(to_table(&bdd, r), expect, "ite on {tf:#06x} {tg:#06x} {th:#06x}");
    }
}

#[test]
fn shannon_decomposition() {
    let mut rng = XorShift64::seed_from_u64(0x5A);
    for _ in 0..CASES {
        let table = rng.gen_u16();
        let var = rng.gen_range(0..NVARS) as u32;
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, table);
        let f1 = bdd.cofactor(f, Var(var), true);
        let f0 = bdd.cofactor(f, Var(var), false);
        let v = bdd.var(Var(var));
        let rebuilt = bdd.ite(v, f1, f0);
        assert_eq!(rebuilt, f, "Shannon on {table:#06x} at var {var}");
        // Cofactors do not depend on the variable.
        assert!(!bdd.depends_on(f1, Var(var)));
        assert!(!bdd.depends_on(f0, Var(var)));
    }
}

#[test]
fn quantifier_duality() {
    let mut rng = XorShift64::seed_from_u64(0x0D7);
    for _ in 0..CASES {
        let table = rng.gen_u16();
        let var = rng.gen_range(0..NVARS) as u32;
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, table);
        let cube = bdd.cube_of_vars(&[Var(var)]);
        let ex = bdd.exists(f, cube);
        let fa = bdd.forall(f, cube);
        // ∃x.f = f1 + f0 ; ∀x.f = f1·f0.
        let f1 = bdd.cofactor(f, Var(var), true);
        let f0 = bdd.cofactor(f, Var(var), false);
        assert_eq!(ex, bdd.or(f1, f0), "exists on {table:#06x}");
        assert_eq!(fa, bdd.and(f1, f0), "forall on {table:#06x}");
        // Duality: ¬∃x.f = ∀x.¬f.
        let nf = bdd.not(f);
        let fanf = bdd.forall(nf, cube);
        assert_eq!(ex.complement(), fanf, "duality on {table:#06x}");
        // Containment: ∀x.f ≤ f ≤ ∃x.f.
        assert!(bdd.implies_holds(fa, f));
        assert!(bdd.implies_holds(f, ex));
    }
}

#[test]
fn constrain_restrict_are_covers_and_constrain_agrees_on_care() {
    let mut rng = XorShift64::seed_from_u64(0xC0);
    let mut checked = 0;
    while checked < CASES {
        let (tf, tc) = (rng.gen_u16(), rng.gen_u16());
        if tc == 0 {
            continue;
        }
        checked += 1;
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, tf);
        let c = from_table(&mut bdd, tc);
        let onset = bdd.and(f, c);
        let nc = bdd.not(c);
        let upper = bdd.or(f, nc);
        for g in [bdd.constrain(f, c), bdd.restrict(f, c)] {
            assert!(bdd.implies_holds(onset, g), "cover lower on {tf:#06x}/{tc:#06x}");
            assert!(bdd.implies_holds(g, upper), "cover upper on {tf:#06x}/{tc:#06x}");
        }
        // constrain agrees with f everywhere on the care set.
        let g = bdd.constrain(f, c);
        let gf = bdd.xor(g, f);
        let disagreement = bdd.and(gf, c);
        assert!(disagreement.is_zero(), "constrain image on {tf:#06x}/{tc:#06x}");
    }
}

#[test]
fn sat_counts_are_exact_and_additive() {
    let mut rng = XorShift64::seed_from_u64(0x5A7);
    for _ in 0..CASES {
        let (ta, tb) = (rng.gen_u16(), rng.gen_u16());
        let mut bdd = Bdd::new(NVARS);
        let a = from_table(&mut bdd, ta);
        let b = from_table(&mut bdd, tb);
        let aub = bdd.or(a, b);
        let aib = bdd.and(a, b);
        let lhs = bdd.sat_fraction(aub) + bdd.sat_fraction(aib);
        let rhs = bdd.sat_fraction(a) + bdd.sat_fraction(b);
        assert!((lhs - rhs).abs() < 1e-12, "additivity on {ta:#06x} {tb:#06x}");
        assert_eq!(bdd.sat_count(a), f64::from(ta.count_ones()));
    }
}

#[test]
fn gc_preserves_roots_and_canonicity() {
    let mut rng = XorShift64::seed_from_u64(0x6C);
    for _ in 0..CASES {
        let (ta, tb) = (rng.gen_u16(), rng.gen_u16());
        let mut bdd = Bdd::new(NVARS);
        let a = from_table(&mut bdd, ta);
        let b = from_table(&mut bdd, tb);
        let keep = bdd.xor(a, b);
        let table_before = to_table(&bdd, keep);
        let size_before = bdd.size(keep);
        bdd.collect_garbage(&[keep]);
        assert_eq!(to_table(&bdd, keep), table_before, "gc on {ta:#06x} {tb:#06x}");
        assert_eq!(bdd.size(keep), size_before);
        // Rebuild after GC stays canonical: identical edge.
        let a2 = from_table(&mut bdd, ta);
        let b2 = from_table(&mut bdd, tb);
        let keep2 = bdd.xor(a2, b2);
        assert_eq!(keep2, keep, "post-gc canonicity on {ta:#06x} {tb:#06x}");
    }
}

#[test]
fn isop_interval_soundness_and_irredundancy() {
    let mut rng = XorShift64::seed_from_u64(0x150F);
    for _ in 0..CASES / 2 {
        let (t_onset, t_extra) = (rng.gen_u16(), rng.gen_u16());
        let mut bdd = Bdd::new(NVARS);
        let lower = from_table(&mut bdd, t_onset);
        let extra = from_table(&mut bdd, t_extra);
        let upper = bdd.or(lower, extra);
        let isop = bdd.isop(lower, upper);
        assert!(bdd.implies_holds(lower, isop.function));
        assert!(bdd.implies_holds(isop.function, upper));
        // Cube list and function agree.
        let parts: Vec<Edge> = isop.cubes.iter().map(|c| c.to_edge(&mut bdd)).collect();
        let union = bdd.or_many(parts);
        assert_eq!(union, isop.function);
        // Irredundancy: dropping any one cube uncovers part of lower.
        for skip in 0..isop.cubes.len() {
            let parts: Vec<Edge> = isop
                .cubes
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, c)| c.to_edge(&mut bdd))
                .collect();
            let partial = bdd.or_many(parts);
            assert!(
                !bdd.implies_holds(lower, partial),
                "redundant cube on {t_onset:#06x}/{t_extra:#06x}"
            );
        }
        // No freedom ⟹ exact.
        let exact = bdd.isop(lower, lower);
        assert_eq!(exact.function, lower);
    }
}
