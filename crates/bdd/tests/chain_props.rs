//! Differential properties of the chain-reduced (CBDD) representation.
//!
//! Every test builds the *same* functions in a plain manager and a
//! chain-reduced one and checks that the two agree on everything
//! observable — pointwise evaluation, model counts (bit for bit),
//! semantic signatures, `size` (which chain mode reports in virtual
//! plain-equivalent nodes precisely so size-driven decisions stay
//! mode-invariant), cube enumeration — while the chained manager stores
//! strictly fewer physical nodes on chain-heavy shapes.

use bddmin_bdd::{Bdd, Cube, Edge, ReorderSettings, SigEvaluator, Var};

/// xorshift64* — the same generator family as `bddmin_core::rng`,
/// duplicated locally because the kernel crate sits below it.
fn xs(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Builds the disjunction `x_lo ∨ x_{lo+1} ∨ … ∨ x_hi`.
fn or_chain(bdd: &mut Bdd, lo: u32, hi: u32) -> Edge {
    let mut f = Edge::ZERO;
    for v in (lo..=hi).rev() {
        let x = bdd.var(Var(v));
        f = bdd.or(x, f);
    }
    f
}

/// Asserts `f` (in `a`) and `g` (in `b`) are the same function, the
/// expensive way: all `2^n` assignments.
fn assert_pointwise_equal(a: &Bdd, f: Edge, b: &Bdd, g: Edge, n: usize, what: &str) {
    for bits in 0..1u64 << n {
        let assign: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        assert_eq!(
            a.eval(f, &assign),
            b.eval(g, &assign),
            "{what}: plain and chained disagree on assignment {assign:?}"
        );
    }
}

#[test]
fn or_chain_fuses_and_compresses() {
    let n = 12;
    let mut plain = Bdd::new(n);
    let mut chained = Bdd::new_chained(n);
    assert!(!plain.chain_mode());
    assert!(chained.chain_mode());
    let fp = or_chain(&mut plain, 0, n as u32 - 1);
    let fc = or_chain(&mut chained, 0, n as u32 - 1);
    // One chain node replaces the whole ladder (visible once the
    // intermediate prefix chains of the build loop are collected).
    assert!(chained.stats().chain_nodes > 0, "or-chain must fuse");
    plain.collect_garbage(&[fp]);
    chained.collect_garbage(&[fc]);
    assert!(
        chained.stats().live_nodes < plain.stats().live_nodes,
        "chained {} !< plain {}",
        chained.stats().live_nodes,
        plain.stats().live_nodes
    );
    // The *virtual* size is mode-invariant.
    assert_eq!(plain.size(fp), chained.size(fc));
    assert_pointwise_equal(&plain, fp, &chained, fc, n, "or-chain");
    assert_eq!(
        plain.sat_count(fp).to_bits(),
        chained.sat_count(fc).to_bits(),
        "sat_count must match bit for bit"
    );
}

#[test]
fn negative_literal_cube_compresses_via_complement() {
    // ¬x0·¬x1·…·¬x7 = ¬(x0 ∨ … ∨ x7): the complement edge of one chain
    // node, so chain mode stores it in O(1) physical nodes.
    let n = 8;
    let mut plain = Bdd::new(n);
    let mut chained = Bdd::new_chained(n);
    let build = |bdd: &mut Bdd| {
        let mut f = Edge::ONE;
        for v in (0..n as u32).rev() {
            let x = bdd.var(Var(v));
            let nx = bdd.not(x);
            f = bdd.and(nx, f);
        }
        f
    };
    let fp = build(&mut plain);
    let fc = build(&mut chained);
    assert!(chained.stats().chain_nodes > 0);
    plain.collect_garbage(&[fp]);
    chained.collect_garbage(&[fc]);
    assert!(chained.stats().live_nodes < plain.stats().live_nodes);
    assert_eq!(plain.size(fp), chained.size(fc));
    assert_pointwise_equal(&plain, fp, &chained, fc, n, "negative cube");
}

#[test]
fn positive_cube_never_fuses() {
    // A positive cube x0·x1·…·x7 has hi = next level, lo = ZERO at every
    // node — not the fusable shape (hi = ONE). Chain mode must store it
    // exactly as the plain manager does, which is what keeps the
    // positive-cube walks of `exists` chain-free.
    let n = 8;
    let mut chained = Bdd::new_chained(n);
    let mut f = Edge::ONE;
    for v in (0..n as u32).rev() {
        let x = chained.var(Var(v));
        f = chained.and(x, f);
    }
    assert_eq!(chained.stats().chain_nodes, 0, "positive cubes must not fuse");
    assert!(chained.is_cube(f));
}

/// Runs an identical random op stream on a plain and a chained manager,
/// comparing signatures, model counts, sizes, and level profiles after
/// every operation. This is the broad differential net over `ops.rs`.
#[test]
fn random_op_streams_agree() {
    for seed in 1u64..=6 {
        let n = 6usize;
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut plain = Bdd::new(n);
        let mut chained = Bdd::new_chained(n);
        let mut pool: Vec<(Edge, Edge)> = (0..n as u32)
            .map(|v| (plain.var(Var(v)), chained.var(Var(v))))
            .collect();
        // Seed the pool with a fused chain so every subsequent op has a
        // chance of touching compressed structure.
        pool.push((
            or_chain(&mut plain, 1, n as u32 - 1),
            or_chain(&mut chained, 1, n as u32 - 1),
        ));
        for round in 0..60 {
            let pick = |s: &mut u64, len: usize| (xs(s) as usize) % len;
            let (ap, ac) = pool[pick(&mut state, pool.len())];
            let (bp, bc) = pool[pick(&mut state, pool.len())];
            let (cp, cc) = pool[pick(&mut state, pool.len())];
            let op = xs(&mut state) % 8;
            let (rp, rc) = match op {
                0 => (plain.and(ap, bp), chained.and(ac, bc)),
                1 => (plain.or(ap, bp), chained.or(ac, bc)),
                2 => (plain.xor(ap, bp), chained.xor(ac, bc)),
                3 => (plain.ite(ap, bp, cp), chained.ite(ac, bc, cc)),
                4 => (plain.not(ap), chained.not(ac)),
                5 => {
                    let v = Var((xs(&mut state) % n as u64) as u32);
                    let cube_p = plain.var(v);
                    let cube_c = chained.var(v);
                    (plain.exists(ap, cube_p), chained.exists(ac, cube_c))
                }
                // constrain/restrict require a non-empty care set; the
                // guard is mode-invariant because bp and bc are the same
                // function.
                6 if !bp.is_zero() => (plain.constrain(ap, bp), chained.constrain(ac, bc)),
                7 if !bp.is_zero() => (plain.restrict(ap, bp), chained.restrict(ac, bc)),
                _ => (plain.or(ap, bp), chained.or(ac, bc)),
            };
            pool.push((rp, rc));
            assert_pointwise_equal(
                &plain,
                rp,
                &chained,
                rc,
                n,
                &format!("seed {seed} round {round} op {op}"),
            );
            assert_eq!(
                plain.sat_count(rp).to_bits(),
                chained.sat_count(rc).to_bits(),
                "seed {seed} round {round}: sat_count diverged"
            );
            assert_eq!(
                plain.size(rp),
                chained.size(rc),
                "seed {seed} round {round}: virtual size diverged"
            );
            assert_eq!(
                plain.level_profile(rp),
                chained.level_profile(rc),
                "seed {seed} round {round}: level profile diverged"
            );
            let sp = SigEvaluator::for_bdd(&plain).signature(&plain, rp);
            let sc = SigEvaluator::for_bdd(&chained).signature(&chained, rc);
            assert_eq!(sp, sc, "seed {seed} round {round}: signature diverged");
        }
        // The streams regularly hit fused structure.
        assert!(chained.stats().chain_nodes > 0, "seed {seed}: stream never fused");
    }
}

#[test]
fn cube_enumeration_agrees_across_modes() {
    let n = 5;
    let mut plain = Bdd::new(n);
    let mut chained = Bdd::new_chained(n);
    let build = |bdd: &mut Bdd| {
        let chain = or_chain(bdd, 1, 4);
        let x0 = bdd.var(Var(0));
        bdd.ite(x0, chain, Edge::ZERO)
    };
    let fp = build(&mut plain);
    let fc = build(&mut chained);
    assert!(chained.stats().chain_nodes > 0);
    let cubes_p: Vec<Vec<(Var, bool)>> =
        plain.cubes(fp).map(|c| c.literals().to_vec()).collect();
    let cubes_c: Vec<Vec<(Var, bool)>> =
        chained.cubes(fc).map(|c| c.literals().to_vec()).collect();
    assert_eq!(cubes_p, cubes_c, "cube enumeration diverged");
    assert_eq!(
        plain.shortest_cube(fp).map(|c| c.literals().to_vec()),
        chained.shortest_cube(fc).map(|c| c.literals().to_vec())
    );
    assert_eq!(plain.is_cube(fp), chained.is_cube(fc));
    // A single cube through a chain region is still recognized.
    let lits = vec![(Var(0), false), (Var(2), true)];
    let cube_p = Cube::new(lits.clone()).to_edge(&mut plain);
    let cube_c = Cube::new(lits).to_edge(&mut chained);
    assert!(plain.is_cube(cube_p));
    assert!(chained.is_cube(cube_c));
}

#[test]
fn reorder_splits_and_refuses_chains() {
    let n = 8;
    let mut chained = Bdd::new_chained(n);
    let chain = or_chain(&mut chained, 0, n as u32 - 1);
    let x3 = chained.var(Var(3));
    let x5 = chained.var(Var(5));
    let gate = chained.and(x3, x5);
    let f = chained.xor(chain, gate);
    chained.pin(f);
    chained.pin(chain);
    assert!(chained.stats().chain_nodes > 0);
    let sat_before = chained.sat_count(f).to_bits();
    let sig_before = SigEvaluator::for_bdd(&chained).signature(&chained, f);
    // Swap storm (forces split → swap → refuse at every step), then a
    // full sift.
    for lvl in 0..n - 1 {
        chained.swap_levels(lvl);
    }
    let roots = [f, chain];
    chained.reorder_roots(&ReorderSettings::default(), &roots);
    assert_eq!(chained.sat_count(f).to_bits(), sat_before, "reorder changed sat_count");
    let sig_after = SigEvaluator::for_bdd(&chained).signature(&chained, f);
    assert_eq!(sig_after, sig_before, "reorder changed the signature");
    // The or-chain is order-symmetric, so whatever order the sift
    // settled on, the final refuse pass must have re-fused it.
    assert!(
        chained.stats().chain_nodes > 0,
        "chains must be re-fused after reordering"
    );
}

#[test]
fn swap_levels_round_trip_is_identity_with_chains() {
    let n = 6;
    let mut chained = Bdd::new_chained(n);
    let chain = or_chain(&mut chained, 0, n as u32 - 1);
    chained.pin(chain);
    let live_before = chained.stats().live_nodes;
    let chain_before = chained.stats().chain_nodes;
    for lvl in [0, 2, 4] {
        chained.swap_levels(lvl);
        chained.swap_levels(lvl);
    }
    assert_eq!(chained.stats().live_nodes, live_before);
    assert_eq!(chained.stats().chain_nodes, chain_before);
}

#[test]
fn compacted_preserves_chain_mode_and_compression() {
    let n = 10;
    let mut chained = Bdd::new_chained(n);
    let f = or_chain(&mut chained, 0, n as u32 - 1);
    let (fresh, moved) = chained.compacted(&[f]);
    assert!(fresh.chain_mode(), "compaction must preserve the mode");
    assert!(fresh.stats().chain_nodes > 0, "compaction must re-fuse chains");
    assert_eq!(fresh.size(moved[0]), chained.size(f));
    // And a plain manager stays plain.
    let mut plain = Bdd::new(n);
    let g = or_chain(&mut plain, 0, n as u32 - 1);
    let (fresh_p, _) = plain.compacted(&[g]);
    assert!(!fresh_p.chain_mode());
}

#[test]
fn gc_keeps_chain_accounting_consistent() {
    let n = 10;
    let mut chained = Bdd::new_chained(n);
    let keep = or_chain(&mut chained, 0, 4);
    // Scratch chains that die at collection.
    for lo in 1..5 {
        let _ = or_chain(&mut chained, lo, 9);
    }
    let before = chained.stats().chain_nodes;
    chained.collect_garbage(&[keep]);
    let after = chained.stats().chain_nodes;
    assert!(after <= before);
    assert!(after > 0, "the kept chain must survive");
    // The counter matches a from-scratch rebuild of the same function
    // (collect the rebuild first: transfer leaves its own construction
    // intermediates live in the fresh manager).
    let (mut fresh, moved) = chained.compacted(&[keep]);
    fresh.collect_garbage(&moved);
    assert_eq!(fresh.stats().chain_nodes, after);
}

#[test]
fn peak_live_nodes_tracks_high_water_mark() {
    let n = 12;
    let mut bdd = Bdd::new(n);
    let f = or_chain(&mut bdd, 0, n as u32 - 1);
    let peak_at_top = bdd.stats().peak_live_nodes;
    assert!(peak_at_top >= bdd.stats().live_nodes);
    bdd.collect_garbage(&[f]);
    // Collection shrinks the live count, never the peak.
    assert!(bdd.stats().peak_live_nodes >= peak_at_top);
    assert!(bdd.stats().peak_bytes >= peak_at_top * bdd.stats().bytes_per_node);
}

#[test]
fn debug_break_chain_is_detectable() {
    // The BreakChain mutant support: shortening a chain's span changes
    // the function, and the 64-lane signature must see it.
    let n = 6;
    let mut chained = Bdd::new_chained(n);
    let f = or_chain(&mut chained, 0, n as u32 - 1);
    // Collect first so f's chain node is the only one left; the break
    // must hit reachable structure to be observable.
    chained.collect_garbage(&[f]);
    let sig_before = SigEvaluator::for_bdd(&chained).signature(&chained, f);
    assert!(chained.debug_break_chain(), "a chain node must exist to break");
    let sig_after = SigEvaluator::for_bdd(&chained).signature(&chained, f);
    assert_ne!(sig_before, sig_after, "breaking a chain must change semantics");
}

#[test]
fn plain_manager_has_no_chain_nodes_ever() {
    let n = 10;
    let mut plain = Bdd::new(n);
    let f = or_chain(&mut plain, 0, n as u32 - 1);
    let g = plain.not(f);
    let _ = plain.and(f, g);
    assert_eq!(plain.stats().chain_nodes, 0);
    assert!(!plain.debug_break_chain(), "plain mode has nothing to break");
}
