//! Randomized property tests for the minimization framework, ported
//! from the feature-gated `proptest` suite (`src/proptests.rs`) to the
//! in-tree [`XorShift64`] generator so they run under plain
//! `cargo test -q` in the offline container. Random ISFs over 4 (or,
//! for the exhaustive theorems, 3) variables; every heuristic must
//! return a cover, and the paper's structural theorems are exercised on
//! the random stream with fixed seeds.

use bddmin_bdd::{Bdd, Cube, Edge, Var};
use bddmin_core::rng::XorShift64;
use bddmin_core::{
    exact_minimum, generic_td, lower_bound, matches_directed, minimize_at_level, try_match,
    CliqueOptions, ExactConfig, Heuristic, Isf, MatchCriterion, SiblingConfig,
};

const NVARS: usize = 4;
const TABLE: usize = 1 << NVARS;
const CASES: usize = 48;

fn from_table(bdd: &mut Bdd, table: u16) -> Edge {
    let mut f = Edge::ZERO;
    for row in 0..TABLE {
        if table >> row & 1 == 1 {
            let lits: Vec<(Var, bool)> = (0..NVARS)
                .map(|v| (Var(v as u32), row >> (NVARS - 1 - v) & 1 == 1))
                .collect();
            let cube = Cube::new(lits).to_edge(bdd);
            f = bdd.or(f, cube);
        }
    }
    f
}

/// Builds a 3-variable function from a truth table (for exhaustive checks).
fn from_table3(bdd: &mut Bdd, table: u8) -> Edge {
    let mut f = Edge::ZERO;
    for row in 0..8 {
        if table >> row & 1 == 1 {
            let lits: Vec<(Var, bool)> = (0..3)
                .map(|v| (Var(v as u32), row >> (2 - v) & 1 == 1))
                .collect();
            let cube = Cube::new(lits).to_edge(bdd);
            f = bdd.or(f, cube);
        }
    }
    f
}

/// Draws a random instance with a non-empty care set.
fn instance(rng: &mut XorShift64) -> (u16, u16) {
    loop {
        let tc = rng.gen_u16();
        if tc != 0 {
            return (rng.gen_u16(), tc);
        }
    }
}

#[test]
fn every_heuristic_returns_a_cover() {
    let mut rng = XorShift64::seed_from_u64(0xC0FE);
    for _ in 0..CASES {
        let (tf, tc) = instance(&mut rng);
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, tf);
        let c = from_table(&mut bdd, tc);
        let isf = Isf::new(f, c);
        for h in Heuristic::ALL.into_iter().chain([Heuristic::Scheduled]) {
            let g = h.minimize(&mut bdd, isf);
            assert!(
                isf.is_cover(&mut bdd, g),
                "{h} returned a non-cover on {tf:#06x}/{tc:#06x}"
            );
        }
    }
}

#[test]
fn checked_never_exceeds_f() {
    let mut rng = XorShift64::seed_from_u64(0xC4EC);
    for _ in 0..CASES {
        let (tf, tc) = instance(&mut rng);
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, tf);
        let c = from_table(&mut bdd, tc);
        let isf = Isf::new(f, c);
        let f_size = bdd.size(f);
        for h in Heuristic::ALL {
            let out = h.minimize_checked(&mut bdd, isf);
            assert!(
                out.size <= f_size,
                "{h} checked exceeded f on {tf:#06x}/{tc:#06x}"
            );
            assert!(isf.is_cover(&mut bdd, out.cover));
        }
    }
}

#[test]
fn framework_matches_classic_operators() {
    let mut rng = XorShift64::seed_from_u64(0x7AB2);
    for _ in 0..CASES {
        let (tf, tc) = instance(&mut rng);
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, tf);
        let c = from_table(&mut bdd, tc);
        let isf = Isf::new(f, c);
        let con_fw = generic_td(&mut bdd, isf, SiblingConfig::new(MatchCriterion::Osdm));
        let con_classic = bdd.constrain(f, c);
        assert_eq!(con_fw, con_classic, "constrain row on {tf:#06x}/{tc:#06x}");
        let res_fw = generic_td(
            &mut bdd,
            isf,
            SiblingConfig::new(MatchCriterion::Osdm).no_new_vars(true),
        );
        let res_classic = bdd.restrict(f, c);
        assert_eq!(res_fw, res_classic, "restrict row on {tf:#06x}/{tc:#06x}");
    }
}

#[test]
fn theorem7_cube_care_is_optimal() {
    let mut rng = XorShift64::seed_from_u64(0x7007);
    for _ in 0..CASES {
        // 3-variable instances so the exhaustive optimum (256 candidate
        // covers) stays cheap.
        let mut bdd = Bdd::new(3);
        let tf = (rng.gen_u16() & 0xFF) as u8;
        let f = from_table3(&mut bdd, tf);
        // A random consistent cube over a random subset of variables.
        let mut cube_lits: Vec<(Var, bool)> = Vec::new();
        for v in 0..3 {
            if rng.gen_bool(0.5) {
                cube_lits.push((Var(v), rng.gen_bool(0.5)));
            }
        }
        let cube = Cube::new(cube_lits).to_edge(&mut bdd);
        let isf = Isf::new(f, cube);
        // Exhaustive optimum.
        let mut best = usize::MAX;
        for table in 0u32..256 {
            let g = from_table3(&mut bdd, table as u8);
            if isf.is_cover(&mut bdd, g) {
                best = best.min(bdd.size(g));
            }
        }
        for h in Heuristic::SIBLING {
            let g = h.minimize(&mut bdd, isf);
            assert_eq!(
                bdd.size(g),
                best,
                "{h} not optimal on cube care ({tf:#04x})"
            );
        }
    }
}

#[test]
fn lower_bound_is_sound() {
    let mut rng = XorShift64::seed_from_u64(0x10B0);
    for _ in 0..CASES {
        let (tf, tc) = instance(&mut rng);
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, tf);
        let c = from_table(&mut bdd, tc);
        let isf = Isf::new(f, c);
        let lb = lower_bound(&mut bdd, isf, 1000);
        // Each heuristic is an upper bound on the optimum.
        for h in [
            Heuristic::Constrain,
            Heuristic::Restrict,
            Heuristic::OsmBt,
            Heuristic::TsmTd,
            Heuristic::OptLv,
        ] {
            let g = h.minimize(&mut bdd, isf);
            assert!(
                lb.bound <= bdd.size(g),
                "{h} below the lower bound on {tf:#06x}/{tc:#06x}"
            );
        }
    }
}

#[test]
fn matching_hierarchy_on_random_isfs() {
    let mut rng = XorShift64::seed_from_u64(0x414C);
    for _ in 0..CASES {
        let mut bdd = Bdd::new(NVARS);
        let (t1, c1) = (rng.gen_u16(), rng.gen_u16());
        let (t2, c2) = (rng.gen_u16(), rng.gen_u16());
        let a = {
            let f = from_table(&mut bdd, t1);
            let c = from_table(&mut bdd, c1);
            Isf::new(f, c)
        };
        let b = {
            let f = from_table(&mut bdd, t2);
            let c = from_table(&mut bdd, c2);
            Isf::new(f, c)
        };
        let osdm = matches_directed(&mut bdd, MatchCriterion::Osdm, a, b);
        let osm = matches_directed(&mut bdd, MatchCriterion::Osm, a, b);
        let tsm = matches_directed(&mut bdd, MatchCriterion::Tsm, a, b);
        assert!(!osdm || osm, "osdm ⟹ osm on {t1:#06x}/{c1:#06x} vs {t2:#06x}/{c2:#06x}");
        assert!(!osm || tsm, "osm ⟹ tsm on {t1:#06x}/{c1:#06x} vs {t2:#06x}/{c2:#06x}");
        // Any produced i-cover i-covers both inputs.
        for crit in MatchCriterion::ALL {
            if let Some(m) = try_match(&mut bdd, crit, a, b) {
                assert!(m.i_covers(&mut bdd, a), "{crit} icover of a");
                assert!(m.i_covers(&mut bdd, b), "{crit} icover of b");
            }
        }
    }
}

#[test]
fn level_pass_produces_icover() {
    let mut rng = XorShift64::seed_from_u64(0x1E71);
    for _ in 0..CASES {
        let (tf, tc) = instance(&mut rng);
        let lvl = rng.gen_range(0..NVARS) as u32;
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, tf);
        let c = from_table(&mut bdd, tc);
        let isf = Isf::new(f, c);
        for crit in [MatchCriterion::Osm, MatchCriterion::Tsm] {
            let out = minimize_at_level(
                &mut bdd,
                isf,
                Var(lvl),
                crit,
                CliqueOptions::default(),
                None,
            );
            assert!(
                out.i_covers(&mut bdd, isf),
                "{crit} level pass on {tf:#06x}/{tc:#06x} at {lvl}"
            );
            assert!(bdd.implies_holds(isf.c, out.c), "care must not shrink");
        }
    }
}

#[test]
fn exact_is_a_true_lower_envelope() {
    let mut rng = XorShift64::seed_from_u64(0xE8AC);
    let mut checked = 0;
    while checked < CASES / 2 {
        let tf = (rng.gen_u16() & 0xFF) as u8;
        let tc = (rng.gen_u16() & 0xFF) as u8;
        if tc == 0 {
            continue;
        }
        checked += 1;
        // 3-variable instances with bounded DC counts so the exact
        // enumeration stays small.
        let mut bdd = Bdd::new(3);
        let f = from_table3(&mut bdd, tf);
        let c = from_table3(&mut bdd, tc);
        let isf = Isf::new(f, c);
        let exact = exact_minimum(
            &mut bdd,
            isf,
            ExactConfig {
                max_support_vars: 3,
                max_dc_minterms: 8,
            },
        )
        .expect("3-var instance fits the limits");
        assert!(isf.is_cover(&mut bdd, exact.cover));
        let lb = lower_bound(&mut bdd, isf, 1000);
        assert!(lb.bound <= exact.size, "lb sound on {tf:#04x}/{tc:#04x}");
        for h in Heuristic::ALL.into_iter().chain([Heuristic::Scheduled]) {
            if matches!(h, Heuristic::FAndC | Heuristic::FOrNc) {
                continue;
            }
            let g = h.minimize(&mut bdd, isf);
            assert!(
                exact.size <= bdd.size(g),
                "{h} beat the exact optimum on {tf:#04x}/{tc:#04x}"
            );
        }
    }
}

#[test]
fn trivial_care_shortcuts() {
    // 0 ≠ c ≤ f ⟹ result 1; c ≤ ¬f ⟹ result 0 (paper §3.1).
    let mut rng = XorShift64::seed_from_u64(0x731A);
    for _ in 0..CASES {
        let (tf, tc) = instance(&mut rng);
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, tf);
        let c0 = from_table(&mut bdd, tc);
        let c_in_f = bdd.and(c0, f);
        if c_in_f.is_zero() {
            continue;
        }
        for h in Heuristic::SIBLING {
            let g = h.minimize(&mut bdd, Isf::new(f, c_in_f));
            assert!(g.is_one(), "{h} on c ≤ f ({tf:#06x}/{tc:#06x})");
            let nf = bdd.not(f);
            let c_in_nf = bdd.and(c0, nf);
            if !c_in_nf.is_zero() {
                let g0 = h.minimize(&mut bdd, Isf::new(f, c_in_nf));
                assert!(g0.is_zero(), "{h} on c ≤ ¬f ({tf:#06x}/{tc:#06x})");
            }
        }
    }
}
