//! Cache-size invariance of the minimization heuristics.
//!
//! Every heuristic recurses through the manager-resident caches (the
//! computed table for `ite`/`constrain`/`restrict`, the minimization memo
//! for the sibling/windowed/level matchers). Both are lossy, so their
//! capacity — and any mid-sequence flush — must never change which cover a
//! heuristic returns. Managers driven by identical operation sequences
//! allocate nodes identically, so covers are compared as raw [`Edge`] bits.

use bddmin_bdd::{Bdd, Edge, Var};
use bddmin_core::rng::XorShift64;
use bddmin_core::{Heuristic, Isf};

const SPECS: [&str; 4] = [
    "d1 01",
    "d1 01 1d 01",
    "0d d1 10 01 11 d0 d1 00",
    "1d d1 d0 0d 11 00 d1 10",
];

fn all_heuristics() -> impl Iterator<Item = Heuristic> {
    Heuristic::ALL.into_iter().chain([Heuristic::Scheduled])
}

/// A manager whose cache and memo are pinned at the given geometry.
fn manager_with(num_vars: usize, cache_log2: u32, memo_log2: u32) -> Bdd {
    let mut bdd = Bdd::new(num_vars);
    bdd.set_auto_gc(false);
    bdd.configure_cache(cache_log2, cache_log2);
    bdd.configure_min_memo(memo_log2, memo_log2);
    bdd
}

/// A pseudo-random non-trivial ISF over `num_vars` variables.
fn random_isf(bdd: &mut Bdd, rng: &mut XorShift64, num_vars: usize) -> Isf {
    loop {
        let mut f = Edge::ZERO;
        let mut c = Edge::ZERO;
        // Sum of a few random cubes for each of f and c's complement.
        for _ in 0..6 {
            let mut cube = Edge::ONE;
            for v in 0..num_vars {
                match rng.gen_range(0..3) {
                    0 => cube = { let l = bdd.literal(Var(v as u32), true); bdd.and(cube, l) },
                    1 => cube = { let l = bdd.literal(Var(v as u32), false); bdd.and(cube, l) },
                    _ => {}
                }
            }
            if rng.gen_bool(0.5) {
                f = bdd.or(f, cube);
            } else {
                c = bdd.or(c, cube);
            }
        }
        let care = bdd.not(c);
        if !care.is_zero() && !care.is_one() && !f.is_constant() {
            return Isf::new(f, care);
        }
    }
}

/// Minimizes `isf` with every heuristic, optionally flushing all caches
/// before (and between) heuristics.
fn minimize_all_ways(bdd: &mut Bdd, isf: Isf, flush: bool) -> Vec<Edge> {
    all_heuristics()
        .map(|h| {
            if flush {
                bdd.clear_caches();
            }
            h.minimize(bdd, isf)
        })
        .collect()
}

#[test]
fn heuristics_are_capacity_invariant_on_paper_specs() {
    for spec in SPECS {
        let mut tiny = manager_with(4, 4, 4);
        let mut huge = manager_with(4, 18, 16);
        let isf_t = {
            let (f, c) = tiny.from_leaf_spec(spec).unwrap();
            Isf::new(f, c)
        };
        let isf_h = {
            let (f, c) = huge.from_leaf_spec(spec).unwrap();
            Isf::new(f, c)
        };
        assert_eq!((isf_t.f, isf_t.c), (isf_h.f, isf_h.c), "setup must agree");
        let covers_t = minimize_all_ways(&mut tiny, isf_t, false);
        let covers_h = minimize_all_ways(&mut huge, isf_h, false);
        for ((h, a), b) in all_heuristics().zip(&covers_t).zip(&covers_h) {
            assert_eq!(a, b, "{h} diverged on {spec}");
        }
    }
}

#[test]
fn heuristics_are_capacity_invariant_on_random_instances() {
    const NUM_VARS: usize = 7;
    let mut tiny = manager_with(NUM_VARS, 5, 4);
    let mut huge = manager_with(NUM_VARS, 18, 16);
    let mut rng_t = XorShift64::seed_from_u64(1994);
    let mut rng_h = XorShift64::seed_from_u64(1994);
    for round in 0..12 {
        let isf_t = random_isf(&mut tiny, &mut rng_t, NUM_VARS);
        let isf_h = random_isf(&mut huge, &mut rng_h, NUM_VARS);
        assert_eq!((isf_t.f, isf_t.c), (isf_h.f, isf_h.c));
        let covers_t = minimize_all_ways(&mut tiny, isf_t, false);
        let covers_h = minimize_all_ways(&mut huge, isf_h, false);
        for ((h, a), b) in all_heuristics().zip(&covers_t).zip(&covers_h) {
            assert_eq!(a, b, "{h} diverged on round {round}");
        }
    }
    assert!(
        tiny.stats().memo_evictions > 0 || tiny.stats().cache_evictions > 0,
        "workload too small to stress the tiny tables"
    );
}

#[test]
fn mid_sequence_flushes_do_not_change_covers() {
    const NUM_VARS: usize = 7;
    let mut flushed = manager_with(NUM_VARS, 14, 13);
    let mut steady = manager_with(NUM_VARS, 14, 13);
    let mut rng_f = XorShift64::seed_from_u64(77);
    let mut rng_s = XorShift64::seed_from_u64(77);
    for _ in 0..8 {
        let isf_f = random_isf(&mut flushed, &mut rng_f, NUM_VARS);
        let isf_s = random_isf(&mut steady, &mut rng_s, NUM_VARS);
        assert_eq!((isf_f.f, isf_f.c), (isf_s.f, isf_s.c));
        let covers_f = minimize_all_ways(&mut flushed, isf_f, true);
        let covers_s = minimize_all_ways(&mut steady, isf_s, false);
        assert_eq!(covers_f, covers_s);
    }
}

#[test]
fn adaptive_growth_matches_pinned_results() {
    const NUM_VARS: usize = 7;
    // Default managers may grow both tables mid-run; pinned-tiny may not.
    let mut adaptive = Bdd::new(NUM_VARS);
    adaptive.set_auto_gc(false);
    let mut tiny = manager_with(NUM_VARS, 5, 4);
    let mut rng_a = XorShift64::seed_from_u64(31337);
    let mut rng_t = XorShift64::seed_from_u64(31337);
    for _ in 0..10 {
        let isf_a = random_isf(&mut adaptive, &mut rng_a, NUM_VARS);
        let isf_t = random_isf(&mut tiny, &mut rng_t, NUM_VARS);
        assert_eq!((isf_a.f, isf_a.c), (isf_t.f, isf_t.c));
        let covers_a = minimize_all_ways(&mut adaptive, isf_a, false);
        let covers_t = minimize_all_ways(&mut tiny, isf_t, false);
        assert_eq!(covers_a, covers_t);
    }
}
