//! Graceful degradation under resource budgets: every budgeted path must
//! return a valid cover no larger than `f`, whatever the budget.

use bddmin_bdd::{Bdd, Budget, BudgetKind, Edge};
use bddmin_core::{Heuristic, Isf, MinReport, Schedule, StepStatus};

const SPECS: [&str; 4] = ["d1 01", "d1 01 1d 01", "1d d1 d0 0d", "0d d1 10 01 11 d0 d1 00"];

fn instance(spec: &str) -> (Bdd, Isf) {
    let mut bdd = Bdd::new(4);
    let (f, c) = bdd.from_leaf_spec(spec).unwrap();
    (bdd, Isf::new(f, c))
}

fn registry() -> Vec<Heuristic> {
    Heuristic::ALL.into_iter().chain([Heuristic::Scheduled]).collect()
}

fn assert_sound(bdd: &mut Bdd, isf: Isf, g: Edge, context: &str) {
    assert!(isf.is_cover(bdd, g), "{context}: not a cover");
    assert!(
        bdd.size(g) <= bdd.size(isf.f),
        "{context}: larger than f ({} > {})",
        bdd.size(g),
        bdd.size(isf.f)
    );
}

#[test]
fn tiny_budget_smoke_every_heuristic_still_covers() {
    // The CI degradation gate: at step budget 1 nothing completes, yet
    // every registry heuristic must hand back a valid cover ≤ |f|.
    for spec in SPECS {
        for h in registry() {
            let (mut bdd, isf) = instance(spec);
            let (g, report) = h.minimize_budgeted(&mut bdd, isf, Budget::default().steps(1));
            assert_sound(&mut bdd, isf, g, &format!("{h} on {spec} at steps=1"));
            let _ = report; // degradation is allowed but not required (FOrig is free)
        }
    }
}

#[test]
fn budget_sweep_is_always_sound() {
    // Sweep step budgets from starvation to ample: soundness must hold at
    // every point on the ladder, for every heuristic.
    for spec in SPECS {
        for h in registry() {
            for steps in [1, 2, 5, 10, 50, 200, 5_000] {
                let (mut bdd, isf) = instance(spec);
                let (g, _) = h.minimize_budgeted(&mut bdd, isf, Budget::default().steps(steps));
                assert_sound(&mut bdd, isf, g, &format!("{h} on {spec} at steps={steps}"));
            }
        }
    }
}

#[test]
fn ample_budget_matches_plain_minimize() {
    // With a budget large enough to complete, the budgeted path returns
    // byte-identical covers (modulo the size clamp, which never triggers
    // for these instances' heuristic results at or below |f|).
    for spec in SPECS {
        for h in registry() {
            let (mut bdd, isf) = instance(spec);
            let plain = h.minimize_checked(&mut bdd, isf);
            bdd.clear_caches();
            let (budgeted, report) =
                h.minimize_budgeted(&mut bdd, isf, Budget::default().steps(1_000_000));
            assert_eq!(
                budgeted, plain.cover,
                "{h} on {spec}: budgeted result differs under an ample budget"
            );
            assert_eq!(report.skipped(), 0, "{h} on {spec}: spurious skip");
        }
    }
}

#[test]
fn unlimited_budget_never_degrades() {
    for spec in SPECS {
        for h in registry() {
            let (mut bdd, isf) = instance(spec);
            let (_, report) = h.minimize_budgeted(&mut bdd, isf, Budget::UNLIMITED);
            assert_eq!(report.skipped(), 0, "{h} on {spec}");
        }
    }
}

#[test]
fn node_ceiling_degrades_gracefully() {
    for spec in SPECS {
        for h in registry() {
            let (mut bdd, isf) = instance(spec);
            let live = bdd.stats().live_nodes;
            // Allow almost nothing beyond what already exists.
            let (g, _) = h.minimize_budgeted(&mut bdd, isf, Budget::default().nodes(live + 1));
            assert_sound(&mut bdd, isf, g, &format!("{h} on {spec} under node ceiling"));
        }
    }
}

#[test]
fn schedule_report_records_the_skip_reason() {
    let (mut bdd, isf) = instance("0d d1 10 01 11 d0 d1 00");
    let (g, report) =
        Schedule::new(2, 1).apply_with_report(&mut bdd, isf, Budget::default().steps(3));
    assert_sound(&mut bdd, isf, g, "schedule at steps=3");
    assert!(report.degraded());
    let first = report.first_skip().expect("a 3-step budget must skip something");
    match first.status {
        StepStatus::Skipped(e) => assert_eq!(e.kind, BudgetKind::Steps),
        StepStatus::Completed => unreachable!(),
    }
}

#[test]
fn schedule_keeps_osm_when_tsm_blows_budget() {
    // The Theorem 12 ladder: find a budget where the osm sibling pass of
    // the first window completes but a later tsm step is skipped. The
    // schedule must keep the osm progress and still return a valid cover.
    let spec = "0d d1 10 01 11 d0 d1 00";
    let mut found = false;
    for steps in 10..400u64 {
        let (mut bdd, isf) = instance(spec);
        let (g, report) =
            Schedule::new(4, 1).apply_with_report(&mut bdd, isf, Budget::default().steps(steps));
        assert_sound(&mut bdd, isf, g, &format!("schedule at steps={steps}"));
        let osm_done = report.steps.iter().any(|s| {
            s.kind == bddmin_core::StepKind::OsmSiblings && s.status.is_completed()
        });
        let tsm_skipped = report.steps.iter().any(|s| {
            matches!(
                s.kind,
                bddmin_core::StepKind::TsmSiblings | bddmin_core::StepKind::TsmLevel
            ) && !s.status.is_completed()
        });
        if osm_done && tsm_skipped {
            found = true;
            break;
        }
    }
    assert!(found, "no budget exhibited the keep-osm-drop-tsm degradation");
}

#[test]
fn budgeted_runs_are_deterministic() {
    // Same instance, same step budget, fresh managers: identical covers
    // and identical reports (the step counter is the only clock).
    for steps in [1, 7, 63, 900] {
        let run = |steps: u64| -> (usize, MinReport) {
            let (mut bdd, isf) = instance("0d d1 10 01 11 d0 d1 00");
            let (g, report) =
                Heuristic::Scheduled.minimize_budgeted(&mut bdd, isf, Budget::default().steps(steps));
            (bdd.size(g), report)
        };
        let (size1, report1) = run(steps);
        let (size2, report2) = run(steps);
        assert_eq!(size1, size2, "steps={steps}");
        assert_eq!(report1, report2, "steps={steps}");
    }
}

#[test]
fn trivial_heuristics_survive_starvation() {
    let (mut bdd, isf) = instance("d1 01 1d 01");
    for h in [Heuristic::FOrig, Heuristic::FAndC, Heuristic::FOrNc] {
        let (g, _) = h.minimize_budgeted(&mut bdd, isf, Budget::default().steps(1));
        assert_sound(&mut bdd, isf, g, &format!("{h} at steps=1"));
    }
    // FOrig never needs budget at all.
    let (g, report) = Heuristic::FOrig.minimize_budgeted(&mut bdd, isf, Budget::default().steps(1));
    assert_eq!(g, isf.f);
    assert!(!report.degraded());
}

#[test]
fn zero_var_frontier_budget_expired_deadline() {
    use std::time::Instant;
    let (mut bdd, isf) = instance("0d d1 10 01 11 d0 d1 00");
    let budget = Budget::default().deadline(Instant::now());
    let (g, report) = Heuristic::Scheduled.minimize_budgeted(&mut bdd, isf, budget);
    assert_sound(&mut bdd, isf, g, "expired deadline");
    assert!(report.degraded());
}
