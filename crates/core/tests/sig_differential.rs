//! Differential suite for the matching-graph acceleration layer.
//!
//! The signature filter, the tsm pair memo, and the bitset clique cover
//! are all refutation-only or pure memoization, so the accelerated level
//! solvers must be **byte-identical** to the unfiltered reference path:
//! same matching graphs, same replacement ISFs, same minimized edges.
//! Both paths run sequentially in the *same* manager, so canonicity makes
//! raw edge-bits comparison exact.

use bddmin_bdd::{Bdd, Edge, SigEvaluator, Var};
use bddmin_core::rng::XorShift64;
use bddmin_core::sigfilter::{isf_sig, refutes_osm, refutes_tsm};
use bddmin_core::{
    gather_below_level, matches_directed, minimize_at_level_with, osm_matching_pairs,
    solve_fmm_osm_with, solve_fmm_tsm_with, tsm_matching_pairs, CliqueOptions, Isf, LevelAccel,
    MatchCriterion,
};

const NUM_VARS: usize = 8;

/// A pseudo-random non-trivial ISF: sums of random cubes for the onset
/// and for the don't-care set.
fn random_isf(bdd: &mut Bdd, rng: &mut XorShift64) -> Isf {
    loop {
        let mut f = Edge::ZERO;
        let mut dc = Edge::ZERO;
        for _ in 0..6 {
            let cube = random_cube(bdd, rng, 0.6);
            if rng.gen_bool(0.5) {
                f = bdd.or(f, cube);
            } else {
                dc = bdd.or(dc, cube);
            }
        }
        let care = bdd.not(dc);
        if !care.is_zero() && !care.is_one() && !f.is_constant() {
            return Isf::new(f, care);
        }
    }
}

/// A random cube; each variable appears with probability `density`.
fn random_cube(bdd: &mut Bdd, rng: &mut XorShift64, density: f64) -> Edge {
    let mut cube = Edge::ONE;
    for v in 0..NUM_VARS {
        if rng.gen_bool(density) {
            let lit = bdd.literal(Var(v as u32), rng.gen_bool(0.5));
            cube = bdd.and(cube, lit);
        }
    }
    cube
}

/// Every partial-acceleration configuration worth distinguishing.
fn accels() -> [LevelAccel; 3] {
    let sig_only = LevelAccel {
        pair_memo: false,
        ..LevelAccel::default()
    };
    let memo_only = LevelAccel {
        sig_filter: false,
        ..LevelAccel::default()
    };
    [LevelAccel::default(), sig_only, memo_only]
}

#[test]
fn filtered_and_unfiltered_matching_graphs_are_identical() {
    for seed in 0..8u64 {
        let mut bdd = Bdd::new(NUM_VARS);
        let mut rng = XorShift64::seed_from_u64(seed);
        let isf = random_isf(&mut bdd, &mut rng);
        for lvl in [1u32, 3, 5] {
            let gathered = gather_below_level(&mut bdd, isf, Var(lvl), None);
            if gathered.len() < 2 {
                continue;
            }
            let reference = tsm_matching_pairs(&mut bdd, &gathered, LevelAccel::UNFILTERED);
            for accel in accels() {
                assert_eq!(
                    tsm_matching_pairs(&mut bdd, &gathered, accel),
                    reference,
                    "tsm graph differs (seed {seed}, level {lvl}, {accel:?})"
                );
            }
            let isfs: Vec<Isf> = gathered.iter().map(|g| g.isf).collect();
            let reference = osm_matching_pairs(&mut bdd, &isfs, LevelAccel::UNFILTERED);
            for accel in accels() {
                assert_eq!(
                    osm_matching_pairs(&mut bdd, &isfs, accel),
                    reference,
                    "osm graph differs (seed {seed}, level {lvl}, {accel:?})"
                );
            }
        }
    }
}

#[test]
fn filtered_and_unfiltered_solvers_return_identical_isfs() {
    for seed in 10..16u64 {
        let mut bdd = Bdd::new(NUM_VARS);
        let mut rng = XorShift64::seed_from_u64(seed);
        let isf = random_isf(&mut bdd, &mut rng);
        for lvl in [1u32, 3, 5] {
            let gathered = gather_below_level(&mut bdd, isf, Var(lvl), None);
            if gathered.len() < 2 {
                continue;
            }
            let opts = CliqueOptions::default();
            let reference =
                solve_fmm_tsm_with(&mut bdd, &gathered, opts, LevelAccel::UNFILTERED);
            for accel in accels() {
                assert_eq!(
                    solve_fmm_tsm_with(&mut bdd, &gathered, opts, accel),
                    reference,
                    "tsm solution differs (seed {seed}, level {lvl}, {accel:?})"
                );
            }
            let isfs: Vec<Isf> = gathered.iter().map(|g| g.isf).collect();
            let reference = solve_fmm_osm_with(&mut bdd, &isfs, LevelAccel::UNFILTERED);
            for accel in accels() {
                assert_eq!(
                    solve_fmm_osm_with(&mut bdd, &isfs, accel),
                    reference,
                    "osm solution differs (seed {seed}, level {lvl}, {accel:?})"
                );
            }
        }
    }
}

#[test]
fn filtered_and_unfiltered_level_passes_return_identical_edges() {
    for seed in 20..26u64 {
        let mut bdd = Bdd::new(NUM_VARS);
        let mut rng = XorShift64::seed_from_u64(seed);
        let isf = random_isf(&mut bdd, &mut rng);
        for criterion in [MatchCriterion::Tsm, MatchCriterion::Osm] {
            for lvl in [0u32, 2, 4] {
                let opts = CliqueOptions::default();
                let reference = minimize_at_level_with(
                    &mut bdd,
                    isf,
                    Var(lvl),
                    criterion,
                    opts,
                    None,
                    LevelAccel::UNFILTERED,
                );
                for accel in accels() {
                    let got = minimize_at_level_with(
                        &mut bdd, isf, Var(lvl), criterion, opts, None, accel,
                    );
                    assert_eq!(
                        (got.f, got.c),
                        (reference.f, reference.c),
                        "level pass differs (seed {seed}, {criterion:?}, level {lvl}, {accel:?})"
                    );
                }
            }
        }
    }
}

/// The refutation formulas must be *sound*: a pair the exact check proves
/// matching can never be refuted by its signatures. Exercised on random
/// ISFs and on Theorem 7 instances (cube care sets, where `constrain` is
/// optimum and matching pairs abound).
#[test]
fn signatures_never_refute_a_provably_matching_pair() {
    let mut bdd = Bdd::new(NUM_VARS);
    let mut rng = XorShift64::seed_from_u64(94);
    let mut isfs: Vec<Isf> = Vec::new();
    for _ in 0..12 {
        isfs.push(random_isf(&mut bdd, &mut rng));
    }
    // Theorem 7 instances: the care set is a single cube. Include pairs
    // sharing the same onset under different cubes and vice versa.
    for _ in 0..8 {
        let cube = loop {
            let c = random_cube(&mut bdd, &mut rng, 0.4);
            if !c.is_constant() {
                break c;
            }
        };
        let f = random_isf(&mut bdd, &mut rng).f;
        isfs.push(Isf::new(f, cube));
        let f_on_cube = bdd.and(f, cube);
        isfs.push(Isf::new(f_on_cube, cube));
    }
    let mut ev = SigEvaluator::for_bdd(&bdd);
    let sigs: Vec<_> = isfs.iter().map(|&i| isf_sig(&mut ev, &bdd, i)).collect();
    let mut matching_pairs = 0;
    for i in 0..isfs.len() {
        for j in 0..isfs.len() {
            if matches_directed(&mut bdd, MatchCriterion::Tsm, isfs[i], isfs[j]) {
                matching_pairs += 1;
                assert!(
                    !refutes_tsm(sigs[i], sigs[j]),
                    "signature refuted a proven tsm match ({i}, {j})"
                );
            }
            if matches_directed(&mut bdd, MatchCriterion::Osm, isfs[i], isfs[j]) {
                assert!(
                    !refutes_osm(sigs[i], sigs[j]),
                    "signature refuted a proven osm match ({i}, {j})"
                );
            }
        }
    }
    // The instance family must actually contain matches beyond reflexivity
    // for this test to mean anything.
    assert!(
        matching_pairs > isfs.len(),
        "test family has no non-trivial matching pairs"
    );
}
