//! Lower bound on the minimum cover size (paper Section 4.1.1).
//!
//! By Theorem 7, `constrain` is optimum when the care set is a cube. For
//! any cube `p ≤ c`, the interval of `[f, p]` contains the interval of
//! `[f, c]`, so the minimum cover of `[f, p]` — which `constrain(f, p)`
//! computes exactly — is no larger than any cover of `[f, c]`. Taking the
//! maximum of `|constrain(f, p)|` over many cubes `p` of `c` yields a lower
//! bound on the EBM optimum.

use bddmin_bdd::Bdd;

use crate::isf::Isf;

/// Result of a lower-bound computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LowerBound {
    /// The bound: every cover of the instance has at least this many nodes.
    pub bound: usize,
    /// Number of cubes actually examined.
    pub cubes_examined: usize,
}

/// Computes the cube-based lower bound, examining at most `max_cubes` cubes
/// of `c` in depth-first order plus one largest cube (the paper enumerates
/// up to 1000 and suggests preferring large cubes).
///
/// # Panics
///
/// Panics if `isf.c` is the zero function.
///
/// # Example
///
/// ```
/// use bddmin_bdd::Bdd;
/// use bddmin_core::{lower_bound, Heuristic, Isf};
///
/// let mut bdd = Bdd::new(3);
/// let (f, c) = bdd.from_leaf_spec("d1 01 1d 01").unwrap();
/// let isf = Isf::new(f, c);
/// let lb = lower_bound(&mut bdd, isf, 1000);
/// let g = Heuristic::Constrain.minimize(&mut bdd, isf);
/// assert!(lb.bound <= bdd.size(g));
/// ```
pub fn lower_bound(bdd: &mut Bdd, isf: Isf, max_cubes: usize) -> LowerBound {
    assert!(!isf.c.is_zero(), "lower_bound: care set must be non-empty");
    let mut bound = 1; // the constant node always exists
    let mut examined = 0;
    // Collect first to release the borrow on the manager.
    let cubes: Vec<bddmin_bdd::Cube> = bdd.cubes(isf.c).take(max_cubes).collect();
    for cube in &cubes {
        let p = cube.to_edge(bdd);
        let g = bdd.constrain(isf.f, p);
        bound = bound.max(bdd.size(g));
        examined += 1;
    }
    // A largest cube often gives the strongest bound; include one if the
    // DFS enumeration was truncated.
    if examined == max_cubes {
        if let Some(big) = bdd.shortest_cube(isf.c) {
            let p = big.to_edge(bdd);
            let g = bdd.constrain(isf.f, p);
            bound = bound.max(bdd.size(g));
            examined += 1;
        }
    }
    LowerBound {
        bound,
        cubes_examined: examined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::{minimize_all, Heuristic};
    use bddmin_bdd::Var;

    #[test]
    fn bound_below_every_heuristic() {
        let specs = ["d1 01", "d1 01 1d 01", "1d d1 d0 0d", "0d d1 10 01 11 d0 d1 00"];
        for spec in specs {
            let mut bdd = Bdd::new(4);
            let (f, c) = bdd.from_leaf_spec(spec).unwrap();
            let isf = Isf::new(f, c);
            let lb = lower_bound(&mut bdd, isf, 1000);
            for h in Heuristic::ALL {
                if matches!(h, Heuristic::FAndC | Heuristic::FOrNc | Heuristic::FOrig) {
                    continue; // those are not minimizers of the instance
                }
                let g = h.minimize(&mut bdd, isf);
                assert!(
                    lb.bound <= bdd.size(g),
                    "{h} result smaller than the lower bound on {spec}"
                );
            }
        }
    }

    #[test]
    fn bound_below_exhaustive_minimum() {
        let mut bdd = Bdd::new(3);
        let (f, c) = bdd.from_leaf_spec("1d d1 d0 0d").unwrap();
        let isf = Isf::new(f, c);
        let lb = lower_bound(&mut bdd, isf, 1000);
        // Exhaustive minimum over all 3-var covers.
        let mut best = usize::MAX;
        for table in 0u32..256 {
            let mut g = bddmin_bdd::Edge::ZERO;
            for row in 0..8 {
                if table >> row & 1 == 1 {
                    let lits: Vec<(Var, bool)> = (0..3)
                        .map(|v| (Var(v as u32), row >> (2 - v) & 1 == 1))
                        .collect();
                    let cube = bddmin_bdd::Cube::new(lits).to_edge(&mut bdd);
                    g = bdd.or(g, cube);
                }
            }
            if isf.is_cover(&mut bdd, g) {
                best = best.min(bdd.size(g));
            }
        }
        assert!(lb.bound <= best);
    }

    #[test]
    fn bound_is_exact_when_care_is_cube() {
        // For cube care sets the bound equals the true optimum (Theorem 7).
        let mut bdd = Bdd::new(3);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let cc = bdd.var(Var(2));
        let x = bdd.xor(b, cc);
        let f = bdd.ite(a, x, b);
        let cube = a;
        let isf = Isf::new(f, cube);
        let lb = lower_bound(&mut bdd, isf, 1000);
        let g = Heuristic::Constrain.minimize(&mut bdd, isf);
        assert_eq!(lb.bound, bdd.size(g));
    }

    #[test]
    fn min_vs_bound_ratio_is_finite() {
        let mut bdd = Bdd::new(4);
        let (f, c) = bdd.from_leaf_spec("0d d1 10 01 11 d0 d1 00").unwrap();
        let isf = Isf::new(f, c);
        let lb = lower_bound(&mut bdd, isf, 10);
        let (_, min) = minimize_all(&mut bdd, isf);
        assert!(lb.bound >= 1);
        assert!(lb.bound <= bdd.size(min));
        assert!(lb.cubes_examined >= 1);
    }

    #[test]
    fn more_cubes_never_weaken_the_bound() {
        let mut bdd = Bdd::new(4);
        let (f, c) = bdd.from_leaf_spec("0d d1 10 01 11 d0 d1 00").unwrap();
        let isf = Isf::new(f, c);
        let small = lower_bound(&mut bdd, isf, 1);
        let large = lower_bound(&mut bdd, isf, 1000);
        // A full enumeration sees every cube the truncated one saw.
        assert!(large.bound >= small.bound);
        assert!(large.cubes_examined >= small.cubes_examined.min(1000));
    }
}
