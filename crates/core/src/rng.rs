//! A tiny, dependency-free pseudo-random number generator.
//!
//! The workspace builds in a hermetic container with no crates.io access,
//! so the benchmark generators and randomized experiment drivers cannot
//! pull in the `rand` crate. This xorshift64* generator (Vigna,
//! "An experimental exploration of Marsaglia's xorshift generators,
//! scrambled") is more than adequate for seeding benchmark circuits and
//! sampling random truth tables: it passes BigCrush except for the lowest
//! bits, which we never use in isolation.
//!
//! Determinism is part of the contract: the same seed always yields the
//! same stream, across platforms, so benchmark suites (`random_fsm`) and
//! experiment tables stay reproducible.

/// Xorshift64* generator. Not cryptographically secure.
///
/// # Example
///
/// ```
/// use bddmin_core::rng::XorShift64;
/// let mut a = XorShift64::seed_from_u64(42);
/// let mut b = XorShift64::seed_from_u64(42);
/// assert_eq!(a.gen_u64(), b.gen_u64());
/// let r = a.gen_range(0..10);
/// assert!(r < 10);
/// ```
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid:
    /// the seed is pre-mixed with a splitmix64 step so correlated small
    /// seeds (1, 2, 3, …) still produce decorrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 finalizer; also maps 0 away from the forbidden
        // all-zero xorshift state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        XorShift64 {
            state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn gen_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next 32-bit value (the high half, which has the best quality).
    #[inline]
    pub fn gen_u32(&mut self) -> u32 {
        (self.gen_u64() >> 32) as u32
    }

    /// Next 16-bit value.
    #[inline]
    pub fn gen_u16(&mut self) -> u16 {
        (self.gen_u64() >> 48) as u16
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53 bits of mantissa are plenty for benchmark probabilities.
        let u = (self.gen_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = (range.end - range.start) as u64;
        // Multiply-shift range reduction (Lemire); the slight modulo bias
        // of the plain approach would be irrelevant here, but this is just
        // as cheap.
        let r = ((self.gen_u64() as u128 * span as u128) >> 64) as u64;
        range.start + r as usize
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn gen_range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "gen_range_inclusive: empty range");
        self.gen_range(lo..hi + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShift64::seed_from_u64(7);
        let mut b = XorShift64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
        let mut c = XorShift64::seed_from_u64(8);
        assert_ne!(a.gen_u64(), c.gen_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::seed_from_u64(0);
        // Must not get stuck at zero.
        assert!((0..4).map(|_| r.gen_u64()).any(|x| x != 0));
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = XorShift64::seed_from_u64(123);
        for _ in 0..1000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range_inclusive(2, 3);
            assert!(w == 2 || w == 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = XorShift64::seed_from_u64(5);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        // A fair coin should land on both sides in 100 draws.
        let heads = (0..100).filter(|_| r.gen_bool(0.5)).count();
        assert!(heads > 10 && heads < 90);
    }
}
