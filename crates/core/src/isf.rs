//! Incompletely specified functions.

use bddmin_bdd::{Bdd, BudgetExceeded, Edge};

/// An incompletely specified function `[f, c]` (paper Section 2).
///
/// `c` is the **care** function: the onset is `f·c`, the offset `¬f·c`, and
/// the don't-care set `¬c`. A completely specified `g` is a *cover* iff
/// `f·c ≤ g ≤ f + ¬c`.
///
/// # Example
///
/// ```
/// use bddmin_bdd::{Bdd, Var};
/// use bddmin_core::Isf;
///
/// let mut bdd = Bdd::new(2);
/// let a = bdd.var(Var(0));
/// let b = bdd.var(Var(1));
/// let f = bdd.and(a, b);
/// let isf = Isf::new(f, a); // care only about a = 1
/// assert!(isf.is_cover(&mut bdd, b)); // b agrees with a·b wherever a = 1
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Isf {
    /// The function (its values on `¬c` are immaterial).
    pub f: Edge,
    /// The care function.
    pub c: Edge,
}

impl Isf {
    /// Bundles a function and a care function.
    pub fn new(f: Edge, c: Edge) -> Isf {
        Isf { f, c }
    }

    /// A completely specified function (`c = 1`).
    pub fn total(f: Edge) -> Isf {
        Isf { f, c: Edge::ONE }
    }

    /// The onset `f·c`.
    pub fn onset(self, bdd: &mut Bdd) -> Edge {
        bdd.and(self.f, self.c)
    }

    /// Checked [`Isf::onset`]: returns [`BudgetExceeded`] instead of
    /// running past an armed budget.
    pub fn try_onset(self, bdd: &mut Bdd) -> Result<Edge, BudgetExceeded> {
        bdd.try_and(self.f, self.c)
    }

    /// Checked [`Isf::upper`].
    pub fn try_upper(self, bdd: &mut Bdd) -> Result<Edge, BudgetExceeded> {
        bdd.try_or(self.f, self.c.complement())
    }

    /// Checked [`Isf::canonical_key`].
    pub fn try_canonical_key(self, bdd: &mut Bdd) -> Result<(Edge, Edge), BudgetExceeded> {
        Ok((self.try_onset(bdd)?, self.c))
    }

    /// The offset `¬f·c`.
    pub fn offset(self, bdd: &mut Bdd) -> Edge {
        bdd.and(self.f.complement(), self.c)
    }

    /// The don't-care set `¬c`.
    pub fn dc_set(self) -> Edge {
        self.c.complement()
    }

    /// The upper bound of the cover interval, `f + ¬c`.
    pub fn upper(self, bdd: &mut Bdd) -> Edge {
        bdd.or(self.f, self.c.complement())
    }

    /// True iff `g` is a cover: `f·c ≤ g ≤ f + ¬c`.
    pub fn is_cover(self, bdd: &mut Bdd, g: Edge) -> bool {
        let onset = self.onset(bdd);
        let upper = self.upper(bdd);
        bdd.implies_holds(onset, g) && bdd.implies_holds(g, upper)
    }

    /// True iff `self` *i-covers* `other` (paper Definition 2): every cover
    /// of `self` is a cover of `other`. Equivalent to
    /// `c_other ≤ c_self` and agreement of the functions on `c_other`.
    pub fn i_covers(self, bdd: &mut Bdd, other: Isf) -> bool {
        if !bdd.implies_holds(other.c, self.c) {
            return false;
        }
        let diff = bdd.xor(self.f, other.f);
        let disagreement = bdd.and(diff, other.c);
        disagreement.is_zero()
    }

    /// The complemented ISF `[¬f, c]` (covers of it are complements of
    /// covers of `self`).
    #[must_use]
    pub fn complement(self) -> Isf {
        Isf {
            f: self.f.complement(),
            c: self.c,
        }
    }

    /// Semantic equality as incompletely specified functions: same care set
    /// and same values on it (the representatives `f` may differ on `¬c`).
    pub fn same_function(self, bdd: &mut Bdd, other: Isf) -> bool {
        self.c == other.c && {
            let diff = bdd.xor(self.f, other.f);
            bdd.and(diff, self.c).is_zero()
        }
    }

    /// A canonical key identifying the ISF semantics: `(onset, care)`.
    /// Two ISFs are the same function iff their keys are equal.
    pub fn canonical_key(self, bdd: &mut Bdd) -> (Edge, Edge) {
        (self.onset(bdd), self.c)
    }

    /// True when every point is a don't care (`c = 0`).
    pub fn is_all_dc(self) -> bool {
        self.c.is_zero()
    }

    /// True when there are no don't cares (`c = 1`).
    pub fn is_total(self) -> bool {
        self.c.is_one()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddmin_bdd::Var;

    fn setup() -> (Bdd, Edge, Edge, Edge) {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let c = bdd.var(Var(2));
        (bdd, a, b, c)
    }

    #[test]
    fn onset_offset_partition_care() {
        let (mut bdd, a, b, _) = setup();
        let f = bdd.xor(a, b);
        let isf = Isf::new(f, a);
        let on = isf.onset(&mut bdd);
        let off = isf.offset(&mut bdd);
        assert!(bdd.and(on, off).is_zero());
        assert_eq!(bdd.or(on, off), a);
        assert_eq!(isf.dc_set(), bdd.not(a));
    }

    #[test]
    fn cover_bounds() {
        let (mut bdd, a, b, _) = setup();
        let f = bdd.and(a, b);
        let isf = Isf::new(f, a);
        // The onset and the upper bound are themselves covers.
        let on = isf.onset(&mut bdd);
        let up = isf.upper(&mut bdd);
        assert!(isf.is_cover(&mut bdd, on));
        assert!(isf.is_cover(&mut bdd, up));
        assert!(isf.is_cover(&mut bdd, f));
        assert!(isf.is_cover(&mut bdd, b));
        // Something that disagrees on the care set is not a cover.
        let nb = bdd.not(b);
        assert!(!isf.is_cover(&mut bdd, nb));
    }

    #[test]
    fn total_isf_has_unique_cover() {
        let (mut bdd, a, b, _) = setup();
        let f = bdd.or(a, b);
        let isf = Isf::total(f);
        assert!(isf.is_total());
        assert!(isf.is_cover(&mut bdd, f));
        assert!(!isf.is_cover(&mut bdd, a));
    }

    #[test]
    fn i_cover_reflexive_and_dc_growth() {
        let (mut bdd, a, b, _) = setup();
        let f = bdd.xor(a, b);
        let big = Isf::new(f, Edge::ONE);
        let small = Isf::new(f, a);
        assert!(big.i_covers(&mut bdd, big));
        // The more constrained ISF i-covers the freer one, not vice versa.
        assert!(big.i_covers(&mut bdd, small));
        assert!(!small.i_covers(&mut bdd, big));
    }

    #[test]
    fn i_cover_requires_agreement() {
        let (mut bdd, a, b, _) = setup();
        let f1 = Isf::new(a, Edge::ONE);
        let f2 = Isf::new(b, Edge::ONE);
        assert!(!f1.i_covers(&mut bdd, f2));
    }

    #[test]
    fn same_function_ignores_dc_values() {
        let (mut bdd, a, b, _) = setup();
        // [a·b, a] and [b, a] agree where a=1.
        let ab = bdd.and(a, b);
        let x = Isf::new(ab, a);
        let y = Isf::new(b, a);
        assert!(x.same_function(&mut bdd, y));
        assert_eq!(
            x.canonical_key(&mut bdd),
            y.canonical_key(&mut bdd)
        );
        let z = Isf::new(bdd.not(b), a);
        assert!(!x.same_function(&mut bdd, z));
    }

    #[test]
    fn complement_covers_complement() {
        let (mut bdd, a, b, _) = setup();
        let isf = Isf::new(bdd.and(a, b), a);
        let g = b; // cover of isf
        assert!(isf.is_cover(&mut bdd, g));
        let ng = bdd.not(g);
        assert!(isf.complement().is_cover(&mut bdd, ng));
    }

    #[test]
    fn all_dc_flags() {
        let (_, a, _, _) = setup();
        assert!(Isf::new(a, Edge::ZERO).is_all_dc());
        assert!(!Isf::new(a, a).is_all_dc());
        assert!(Isf::new(a, Edge::ONE).is_total());
    }
}
