//! Signature-based refutation of matching-graph edges.
//!
//! A [`SigEvaluator`](bddmin_bdd::SigEvaluator) evaluates a function on
//! 64 fixed pseudo-random assignments at once. For an ISF `[f, c]` we keep
//! the pair `(on, c) = (sig(f) & sig(c), sig(c))`: on lanes where `c`'s
//! bit is set, `on`'s bit is the function's cared-about value; on
//! don't-care lanes `on` is forced to 0, so equal ISFs (equal onset and
//! care) always produce equal pairs regardless of their representatives.
//!
//! Because signatures are exact evaluations, a violated matching
//! condition visible in the lanes is a *counterexample*:
//!
//! * **tsm** requires `(f1 ⊕ f2)·c1·c2 = 0`; a lane with both care bits
//!   set and differing values witnesses a point of `(f1 ⊕ f2)·c1·c2`.
//! * **osm** (directed, 1 → 2) additionally requires `c1 ≤ c2`; a lane
//!   cared by 1 but not by 2 witnesses `c1·¬c2 ≠ 0`.
//!
//! So [`refutes_tsm`]/[`refutes_osm`] returning `true` **proves** the
//! exact check would return false, and the filter is refutation-only:
//! the filtered matching graph is identical to the unfiltered one, only
//! cheaper to build. `false` proves nothing — surviving pairs still run
//! the exact BDD check.

use bddmin_bdd::{Bdd, SigEvaluator};

use crate::isf::Isf;

/// The signature pair of an ISF: `(onset-under-care, careset)` lanes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct IsfSig {
    /// `sig(f) & sig(c)` — the function's value on the cared lanes.
    pub on: u64,
    /// `sig(c)` — which lanes the ISF cares about.
    pub c: u64,
}

/// Computes the signature pair of `isf` through a shared evaluator (so a
/// batch of ISFs over one DAG costs one traversal of the union).
pub fn isf_sig(ev: &mut SigEvaluator, bdd: &Bdd, isf: Isf) -> IsfSig {
    let sc = ev.signature(bdd, isf.c);
    let sf = ev.signature(bdd, isf.f);
    IsfSig { on: sf & sc, c: sc }
}

/// True iff the lanes *prove* `a` and `b` cannot tsm-match: some commonly
/// cared lane disagrees, witnessing `(f1 ⊕ f2)·c1·c2 ≠ 0`.
#[inline]
pub fn refutes_tsm(a: IsfSig, b: IsfSig) -> bool {
    (a.on ^ b.on) & a.c & b.c != 0
}

/// True iff the lanes *prove* `a` cannot osm-match `b` (directed): a lane
/// cared by `a` but not `b` breaks `c1 ≤ c2`, or a commonly cared lane
/// disagrees, breaking `(f1 ⊕ f2)·c1 = 0`.
#[inline]
pub fn refutes_osm(a: IsfSig, b: IsfSig) -> bool {
    a.c & !b.c != 0 || (a.on ^ b.on) & a.c & b.c != 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::{matches_directed, MatchCriterion};
    use bddmin_bdd::{Edge, Var};

    #[test]
    fn equal_isfs_have_equal_sig_pairs_despite_representatives() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let ab = bdd.and(a, b);
        // [a·b, a] and [b, a] are the same ISF with different
        // representatives; don't-care lanes must not leak into `on`.
        let mut ev = SigEvaluator::for_bdd(&bdd);
        let s1 = isf_sig(&mut ev, &bdd, Isf::new(ab, a));
        let s2 = isf_sig(&mut ev, &bdd, Isf::new(b, a));
        assert_eq!(s1, s2);
    }

    #[test]
    fn refutation_is_sound_on_an_exhaustive_family() {
        // Every pair the signatures refute must fail the exact check, in
        // both criteria and (for osm) both directions.
        let mut bdd = Bdd::new(3);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let c = bdd.var(Var(2));
        let xor_ab = bdd.xor(a, b);
        let fns = [Edge::ZERO, Edge::ONE, a, b, xor_ab];
        let or_ac = bdd.or(a, c);
        let cares = [Edge::ZERO, Edge::ONE, a, c, or_ac];
        let mut isfs = Vec::new();
        for &f in &fns {
            for &cc in &cares {
                isfs.push(Isf::new(f, cc));
            }
        }
        let mut ev = SigEvaluator::for_bdd(&bdd);
        let sigs: Vec<IsfSig> = isfs.iter().map(|&i| isf_sig(&mut ev, &bdd, i)).collect();
        for (i, &x) in isfs.iter().enumerate() {
            for (j, &y) in isfs.iter().enumerate() {
                if refutes_tsm(sigs[i], sigs[j]) {
                    assert!(
                        !matches_directed(&mut bdd, MatchCriterion::Tsm, x, y),
                        "sig refuted a real tsm match {x:?} {y:?}"
                    );
                }
                if refutes_osm(sigs[i], sigs[j]) {
                    assert!(
                        !matches_directed(&mut bdd, MatchCriterion::Osm, x, y),
                        "sig refuted a real osm match {x:?} {y:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn refutation_fires_on_obvious_conflicts() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(Var(0));
        let mut ev = SigEvaluator::for_bdd(&bdd);
        let x = isf_sig(&mut ev, &bdd, Isf::new(a, Edge::ONE));
        let y = isf_sig(&mut ev, &bdd, Isf::new(a.complement(), Edge::ONE));
        // a and ¬a disagree everywhere and both care everywhere: every
        // lane is a witness.
        assert!(refutes_tsm(x, y));
        assert!(refutes_osm(x, y));
        // And an ISF never refutes itself (reflexivity survives).
        assert!(!refutes_tsm(x, x));
        assert!(!refutes_osm(x, x));
    }
}
