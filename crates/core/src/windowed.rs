//! Windowed sibling matching: a partial-consumption variant of the generic
//! top-down matcher used by the scheduler (paper Section 3.4).
//!
//! Unlike [`generic_td`](crate::generic_td), which drives the don't cares to
//! exhaustion and returns a *cover*, a windowed pass only attempts matches
//! at levels inside `[window.top, window.bottom)` and leaves everything
//! below untouched, returning a **new incompletely specified function**
//! whose care set contains the original's. Passes therefore compose: the
//! scheduler chains osm and tsm windows before finishing with `constrain`.

use bddmin_bdd::{Bdd, BudgetExceeded, Var};

use crate::isf::Isf;
use crate::matching::try_match_budgeted;
use crate::memo_tags::window_tag;
use crate::sibling::SiblingConfig;
use crate::{BUDGET_PANIC, MAX_REC_DEPTH};

/// A half-open band of levels `[top, bottom)` in which matching is allowed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelWindow {
    /// First level (inclusive) where matches may be made.
    pub top: Var,
    /// First level (exclusive) below the window.
    pub bottom: Var,
}

impl LevelWindow {
    /// A window spanning `[top, bottom)`.
    ///
    /// # Panics
    ///
    /// Panics if `top > bottom`.
    pub fn new(top: Var, bottom: Var) -> LevelWindow {
        assert!(top <= bottom, "window top below bottom");
        LevelWindow { top, bottom }
    }

    /// A window covering every level (equivalent to a full pass).
    pub fn all(bdd: &Bdd) -> LevelWindow {
        LevelWindow {
            top: Var(0),
            bottom: Var(bdd.num_vars() as u32),
        }
    }

    /// True if matching is allowed at `level`.
    pub fn contains(self, level: Var) -> bool {
        self.top <= level && level < self.bottom
    }
}

/// Runs one sibling-matching pass restricted to `window`, returning the
/// rewritten ISF (care set grows or stays; never shrinks).
///
/// Levels above the window are traversed without matching; levels at or
/// below `window.bottom` are returned untouched.
///
/// # Example
///
/// ```
/// use bddmin_bdd::{Bdd, Var};
/// use bddmin_core::{windowed_sibling_pass, Isf, LevelWindow, MatchCriterion, SiblingConfig};
///
/// let mut bdd = Bdd::new(3);
/// let (f, c) = bdd.from_leaf_spec("d1 01 1d 01").unwrap();
/// let isf = Isf::new(f, c);
/// let window = LevelWindow::new(Var(0), Var(2));
/// let out = windowed_sibling_pass(
///     &mut bdd, isf, SiblingConfig::new(MatchCriterion::Osm), window);
/// assert!(out.i_covers(&mut bdd, isf));
/// ```
pub fn windowed_sibling_pass(
    bdd: &mut Bdd,
    isf: Isf,
    config: SiblingConfig,
    window: LevelWindow,
) -> Isf {
    windowed_sibling_pass_budgeted(bdd, isf, config, window).expect(BUDGET_PANIC)
}

/// Checked [`windowed_sibling_pass`]: returns
/// [`BudgetExceeded`](bddmin_bdd::BudgetExceeded) instead of running past
/// an armed budget. On error the pass's partial work is discarded; the
/// input ISF remains the valid state to continue from.
pub fn windowed_sibling_pass_budgeted(
    bdd: &mut Bdd,
    isf: Isf,
    config: SiblingConfig,
    window: LevelWindow,
) -> Result<Isf, BudgetExceeded> {
    // Pass results are pure in (f, c, config, window); the window bounds
    // are folded into the manager-resident memo tag, so the scheduler's
    // repeated passes over shifting windows never cross-contaminate.
    let tag = window_tag(config, window);
    pass_rec(bdd, isf, config, window, tag, 0)
}

fn pass_rec(
    bdd: &mut Bdd,
    isf: Isf,
    config: SiblingConfig,
    window: LevelWindow,
    tag: u64,
    depth: u32,
) -> Result<Isf, BudgetExceeded> {
    let Isf { f, c } = isf;
    if depth > MAX_REC_DEPTH {
        return Err(BudgetExceeded::DEPTH);
    }
    // All-DC and total ISFs have nothing to match; constants likewise.
    if c.is_zero() || c.is_one() || f.is_constant() {
        return Ok(isf);
    }
    if let Some((rf, rc)) = bdd.memo_get(tag, f, c) {
        return Ok(Isf { f: rf, c: rc });
    }
    let f_level = bdd.level(f);
    let c_level = bdd.level(c);
    let top = f_level.min(c_level);
    if top >= window.bottom {
        return Ok(isf);
    }
    let (f_t, f_e) = bdd.cof_at(f, top);
    let (c_t, c_e) = bdd.cof_at(c, top);
    let then_isf = Isf::new(f_t, c_t);
    let else_isf = Isf::new(f_e, c_e);
    let in_window = window.contains(top);

    let ret = if in_window && config.no_new_vars && c_level < f_level {
        let c_next = bdd.try_or(c_t, c_e)?;
        pass_rec(bdd, Isf::new(f, c_next), config, window, tag, depth + 1)?
    } else if in_window {
        if let Some(m) = try_match_budgeted(bdd, config.criterion, then_isf, else_isf)? {
            pass_rec(bdd, m, config, window, tag, depth + 1)?
        } else if config.match_complement {
            if let Some(m) =
                try_match_budgeted(bdd, config.criterion, then_isf, else_isf.complement())?
            {
                let t = pass_rec(bdd, m, config, window, tag, depth + 1)?;
                rebuild_complement(bdd, top, t)?
            } else {
                rebuild_split(bdd, top, then_isf, else_isf, config, window, tag, depth)?
            }
        } else {
            rebuild_split(bdd, top, then_isf, else_isf, config, window, tag, depth)?
        }
    } else {
        // Above the window: descend without matching.
        rebuild_split(bdd, top, then_isf, else_isf, config, window, tag, depth)?
    };
    bdd.memo_insert(tag, f, c, (ret.f, ret.c));
    Ok(ret)
}

#[allow(clippy::too_many_arguments)]
fn rebuild_split(
    bdd: &mut Bdd,
    top: Var,
    then_isf: Isf,
    else_isf: Isf,
    config: SiblingConfig,
    window: LevelWindow,
    tag: u64,
    depth: u32,
) -> Result<Isf, BudgetExceeded> {
    let t = pass_rec(bdd, then_isf, config, window, tag, depth + 1)?;
    let e = pass_rec(bdd, else_isf, config, window, tag, depth + 1)?;
    let v = bdd.try_var_at_level(top)?;
    Ok(Isf {
        f: bdd.try_ite(v, t.f, e.f)?,
        c: bdd.try_ite(v, t.c, e.c)?,
    })
}

fn rebuild_complement(bdd: &mut Bdd, top: Var, t: Isf) -> Result<Isf, BudgetExceeded> {
    let v = bdd.try_var_at_level(top)?;
    Ok(Isf {
        f: bdd.try_ite(v, t.f, t.f.complement())?,
        c: t.c,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::MatchCriterion;
    use crate::sibling::generic_td;
    use bddmin_bdd::Edge;

    fn osm() -> SiblingConfig {
        SiblingConfig::new(MatchCriterion::Osm)
    }

    #[test]
    fn full_window_matches_generic_td_semantics() {
        // A full-window pass followed by reading off the representative is
        // a cover; moreover for instances where the full matcher consumes
        // all DCs the two agree on the care set.
        for spec in ["d1 01", "d1 01 1d 01", "1d d1 d0 0d"] {
            let mut bdd = Bdd::new(3);
            let (f, c) = bdd.from_leaf_spec(spec).unwrap();
            let isf = Isf::new(f, c);
            let w = LevelWindow::all(&bdd);
            let out = windowed_sibling_pass(&mut bdd, isf, osm(), w);
            assert!(out.i_covers(&mut bdd, isf), "{spec}");
            let full = generic_td(&mut bdd, isf, osm());
            // Both are covers of the original.
            assert!(isf.is_cover(&mut bdd, full));
            assert!(out.is_cover(&mut bdd, full) || isf.is_cover(&mut bdd, out.f));
        }
    }

    #[test]
    fn care_set_only_grows() {
        for spec in ["d1 01 1d 01", "0d d1 10 01 11 d0 d1 00"] {
            let mut bdd = Bdd::new(4);
            let (f, c) = bdd.from_leaf_spec(spec).unwrap();
            let isf = Isf::new(f, c);
            let mut cur = isf;
            for crit in MatchCriterion::ALL {
                let cfg = SiblingConfig::new(crit);
                let next =
                    { let w = LevelWindow::all(&bdd); windowed_sibling_pass(&mut bdd, cur, cfg, w) };
                assert!(
                    bdd.implies_holds(cur.c, next.c),
                    "care shrank under {crit} on {spec}"
                );
                assert!(next.i_covers(&mut bdd, cur));
                cur = next;
            }
            // Chained passes still i-cover the original instance.
            assert!(cur.i_covers(&mut bdd, isf));
        }
    }

    #[test]
    fn empty_window_is_identity() {
        let mut bdd = Bdd::new(3);
        let (f, c) = bdd.from_leaf_spec("d1 01 1d 01").unwrap();
        let isf = Isf::new(f, c);
        let w = LevelWindow::new(Var(0), Var(0));
        let out = windowed_sibling_pass(&mut bdd, isf, osm(), w);
        assert_eq!(out, isf);
    }

    #[test]
    fn window_below_top_leaves_upper_structure() {
        // With the window starting at level 1, the top variable's node is
        // never matched away.
        let mut bdd = Bdd::new(3);
        let (f, c) = bdd.from_leaf_spec("d1 01 1d 01").unwrap();
        let isf = Isf::new(f, c);
        let w = LevelWindow::new(Var(1), Var(3));
        let out = windowed_sibling_pass(&mut bdd, isf, osm(), w);
        assert!(out.i_covers(&mut bdd, isf));
    }

    #[test]
    fn all_dc_passthrough() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(Var(0));
        let isf = Isf::new(a, Edge::ZERO);
        let w = LevelWindow::all(&bdd);
            let out = windowed_sibling_pass(&mut bdd, isf, osm(), w);
        assert_eq!(out, isf);
    }

    #[test]
    fn window_containment() {
        let w = LevelWindow::new(Var(2), Var(5));
        assert!(!w.contains(Var(1)));
        assert!(w.contains(Var(2)));
        assert!(w.contains(Var(4)));
        assert!(!w.contains(Var(5)));
    }

    #[test]
    #[should_panic(expected = "window top below bottom")]
    fn bad_window_panics() {
        let _ = LevelWindow::new(Var(3), Var(1));
    }
}
