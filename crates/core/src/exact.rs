//! Exact EBM solving for small instances.
//!
//! The paper (Definition 3, Proposition 4) defines the exact BDD
//! minimization problem and shows membership in NP; its exact complexity
//! is open. For *small* instances an optimum can be found outright by
//! enumerating the cover interval: by the paper's observation that a
//! variable outside both supports is never beneficial, an optimal cover
//! exists over `support(f) ∪ support(c)`, so the candidate space is the
//! set of completions of the don't-care points of that subspace.
//!
//! This is exponential in the number of projected don't-care minterms and
//! only intended for validating the heuristics (tests, the `ablation`
//! binary) — exactly how we use it.

use bddmin_bdd::{Bdd, Cube, Edge, Var};

use crate::isf::Isf;

/// Result of an exact minimization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExactResult {
    /// An optimum cover.
    pub cover: Edge,
    /// Its size (the EBM optimum).
    pub size: usize,
    /// Number of candidate covers enumerated.
    pub candidates: usize,
}

/// Why the exact solver declined to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExactLimit {
    /// The union of supports exceeds `max_support_vars`.
    SupportTooLarge {
        /// Variables in the union of supports.
        support: usize,
    },
    /// More projected don't-care minterms than `max_dc_minterms`.
    TooManyDcPoints {
        /// Projected don't-care minterms.
        dc_points: usize,
    },
}

/// Bounds for [`exact_minimum`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExactConfig {
    /// Maximum size of `support(f) ∪ support(c)`.
    pub max_support_vars: usize,
    /// Maximum number of don't-care minterms in the projected space
    /// (the enumeration is `2^dc_points`).
    pub max_dc_minterms: usize,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_support_vars: 12,
            max_dc_minterms: 16,
        }
    }
}

/// Finds a minimum-size cover of `[f, c]` by exhaustive enumeration over
/// the don't-care completions, within the given limits.
///
/// # Errors
///
/// Returns the violated limit when the instance is too large.
///
/// # Panics
///
/// Panics if `isf.c` is the zero function.
///
/// # Example
///
/// ```
/// use bddmin_bdd::Bdd;
/// use bddmin_core::{exact_minimum, ExactConfig, Heuristic, Isf};
///
/// let mut bdd = Bdd::new(2);
/// let (f, c) = bdd.from_leaf_spec("d1 01").unwrap();
/// let isf = Isf::new(f, c);
/// let exact = exact_minimum(&mut bdd, isf, ExactConfig::default()).unwrap();
/// assert_eq!(exact.size, 2); // the paper's minimum for this instance
/// let heuristic = Heuristic::Constrain.minimize(&mut bdd, isf);
/// assert!(exact.size <= bdd.size(heuristic));
/// ```
pub fn exact_minimum(
    bdd: &mut Bdd,
    isf: Isf,
    config: ExactConfig,
) -> Result<ExactResult, ExactLimit> {
    assert!(!isf.c.is_zero(), "exact_minimum: care set must be non-empty");
    let support = bdd.support_many(&[isf.f, isf.c]);
    if support.len() > config.max_support_vars {
        return Err(ExactLimit::SupportTooLarge {
            support: support.len(),
        });
    }
    // Enumerate the don't-care minterms of the projected space as cubes
    // over the support variables.
    let dc = isf.dc_set();
    let dc_cubes: Vec<Cube> = bdd.cubes(dc).collect();
    let dc_minterms: Vec<Vec<(Var, bool)>> = expand_to_minterms(&support, &dc_cubes);
    if dc_minterms.len() > config.max_dc_minterms {
        return Err(ExactLimit::TooManyDcPoints {
            dc_points: dc_minterms.len(),
        });
    }
    let onset = isf.onset(bdd);
    let minterm_fns: Vec<Edge> = dc_minterms
        .iter()
        .map(|lits| Cube::new(lits.clone()).to_edge(bdd))
        .collect();
    let k = minterm_fns.len();
    assert!(k < 64, "don't-care enumeration limit must be below 64");
    let mut best: Option<(usize, Edge)> = None;
    let mut candidates = 0usize;
    for mask in 0u64..(1u64 << k) {
        let mut g = onset;
        for (i, &m) in minterm_fns.iter().enumerate() {
            if mask >> i & 1 == 1 {
                g = bdd.or(g, m);
            }
        }
        candidates += 1;
        let size = bdd.size(g);
        if best.is_none_or(|(bs, _)| size < bs) {
            best = Some((size, g));
        }
    }
    let (size, cover) = best.expect("at least the onset candidate");
    debug_assert!(isf.is_cover(bdd, cover));
    Ok(ExactResult {
        cover,
        size,
        candidates,
    })
}

/// Expands a cube list into the full minterm list over `support` (cubes may
/// leave support variables free; variables outside the support are ignored
/// because the don't-care region is constant along them within the
/// projected space).
fn expand_to_minterms(support: &[Var], cubes: &[Cube]) -> Vec<Vec<(Var, bool)>> {
    let mut out: Vec<Vec<(Var, bool)>> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for cube in cubes {
        // Restrict the cube to the support variables.
        let fixed: Vec<(Var, bool)> = cube
            .literals()
            .iter()
            .copied()
            .filter(|(v, _)| support.contains(v))
            .collect();
        let free: Vec<Var> = support
            .iter()
            .copied()
            .filter(|v| !fixed.iter().any(|(fv, _)| fv == v))
            .collect();
        for bits in 0u64..(1u64 << free.len()) {
            let mut lits = fixed.clone();
            for (i, &v) in free.iter().enumerate() {
                lits.push((v, bits >> i & 1 == 1));
            }
            lits.sort();
            if seen.insert(lits.clone()) {
                out.push(lits);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::Heuristic;
    use crate::lower_bound::lower_bound;

    #[test]
    fn exact_matches_paper_examples() {
        // (instance, optimum size incl. constant node)
        let cases = [("d1 01", 2), ("d1 01 1d 01", 3), ("1d d1 d0 0d", 2)];
        for (spec, optimum) in cases {
            let mut bdd = Bdd::new(3);
            let (f, c) = bdd.from_leaf_spec(spec).unwrap();
            let isf = Isf::new(f, c);
            let exact = exact_minimum(&mut bdd, isf, ExactConfig::default()).unwrap();
            assert_eq!(exact.size, optimum, "{spec}");
            assert!(isf.is_cover(&mut bdd, exact.cover));
        }
    }

    #[test]
    fn exact_bounded_by_heuristics_and_lower_bound() {
        let specs = ["0d d1 10 01 11 d0 d1 00", "dd 01 11 d0", "01 0d 01 d1"];
        for spec in specs {
            let mut bdd = Bdd::new(4);
            let (f, c) = bdd.from_leaf_spec(spec).unwrap();
            let isf = Isf::new(f, c);
            let exact = exact_minimum(&mut bdd, isf, ExactConfig::default()).unwrap();
            let lb = lower_bound(&mut bdd, isf, 1000);
            assert!(lb.bound <= exact.size, "{spec}");
            for h in Heuristic::SIBLING {
                let g = h.minimize(&mut bdd, isf);
                assert!(exact.size <= bdd.size(g), "{h} beat exact on {spec}");
            }
        }
    }

    #[test]
    fn exact_on_total_function_is_f() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let f = bdd.xor(a, b);
        let isf = Isf::total(f);
        let exact = exact_minimum(&mut bdd, isf, ExactConfig::default()).unwrap();
        assert_eq!(exact.cover, f);
        assert_eq!(exact.candidates, 1);
    }

    #[test]
    fn limits_are_enforced() {
        let mut bdd = Bdd::new(16);
        // Huge support.
        let vars: Vec<Edge> = (0..16).map(|i| bdd.var(Var(i))).collect();
        let f = bdd.or_many(vars.iter().copied());
        let c = bdd.and_many(vars.iter().copied().take(8));
        let isf = Isf::new(f, c);
        let r = exact_minimum(
            &mut bdd,
            isf,
            ExactConfig {
                max_support_vars: 4,
                max_dc_minterms: 4,
            },
        );
        assert!(matches!(r, Err(ExactLimit::SupportTooLarge { .. })));
        // Too many DC points in a small support.
        let mut bdd = Bdd::new(5);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let cc = bdd.var(Var(2));
        let d = bdd.var(Var(3));
        let e = bdd.var(Var(4));
        let x1 = bdd.xor(a, b);
        let x2 = bdd.xor(cc, d);
        let f = bdd.xor(x1, x2);
        let f = bdd.xor(f, e);
        let small_care = bdd.and(a, b);
        let isf = Isf::new(f, small_care);
        let r = exact_minimum(
            &mut bdd,
            isf,
            ExactConfig {
                max_support_vars: 12,
                max_dc_minterms: 8,
            },
        );
        assert!(matches!(r, Err(ExactLimit::TooManyDcPoints { .. })));
    }

    #[test]
    fn exact_respects_support_projection() {
        // DC region constant along non-support variables: projecting is
        // sound, results stay covers.
        let mut bdd = Bdd::new(6);
        let b = bdd.var(Var(2));
        let c = bdd.var(Var(4));
        let f = bdd.and(b, c);
        let isf = Isf::new(f, b);
        let exact = exact_minimum(&mut bdd, isf, ExactConfig::default()).unwrap();
        assert!(isf.is_cover(&mut bdd, exact.cover));
        assert_eq!(exact.size, 2); // the function c
    }
}
