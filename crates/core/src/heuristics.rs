//! The heuristic registry: every minimizer evaluated in the paper behind a
//! single interface (paper Section 4.1.2).
//!
//! Twelve "heuristics" are compared: eight distinct sibling matchers
//! (including `constrain` and `restrict`), the level matcher `opt_lv`, and
//! three trivial baselines `f_orig` (return `f`), `f_and_c` (the onset) and
//! `f_or_nc` (the upper bound). The pseudo-heuristic `min` — the best result
//! over all heuristics — is computed by [`minimize_all`].

use bddmin_bdd::{Bdd, Budget, Edge, Var};

use crate::isf::Isf;
use crate::level::{minimize_at_level_budgeted, opt_lv, CliqueOptions};
use crate::matching::MatchCriterion;
use crate::report::{MinReport, StepKind};
use crate::schedule::Schedule;
use crate::sibling::{generic_td, generic_td_budgeted, SiblingConfig};

/// A named BDD minimization heuristic.
///
/// # Example
///
/// ```
/// use bddmin_bdd::Bdd;
/// use bddmin_core::{Heuristic, Isf};
///
/// let mut bdd = Bdd::new(2);
/// let (f, c) = bdd.from_leaf_spec("d1 01").unwrap();
/// let isf = Isf::new(f, c);
/// for h in Heuristic::ALL {
///     let g = h.minimize(&mut bdd, isf);
///     assert!(isf.is_cover(&mut bdd, g), "{h} must return a cover");
/// }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// `f` itself (always a cover; the baseline for reduction factors).
    FOrig,
    /// The onset `f·c` (lower interval end; usually a poor cover).
    FAndC,
    /// The upper bound `f + ¬c`.
    FOrNc,
    /// The classic generalized cofactor (osdm siblings).
    Constrain,
    /// The classic restrict operator (osdm siblings + no-new-vars).
    Restrict,
    /// osm siblings, plain top-down.
    OsmTd,
    /// osm siblings + no-new-vars.
    OsmNv,
    /// osm siblings + complement matching.
    OsmCp,
    /// osm siblings + complement matching + no-new-vars ("best": the
    /// paper's overall winner).
    OsmBt,
    /// tsm siblings, plain top-down.
    TsmTd,
    /// tsm siblings + complement matching.
    TsmCp,
    /// Level matching with tsm, greedy clique cover.
    OptLv,
    /// The windowed schedule of Section 3.4 (this paper's proposal for a
    /// robust combination; not part of the paper's Table 3).
    Scheduled,
}

impl Heuristic {
    /// The twelve heuristics of the paper's experiments (Table 3), in the
    /// order of Section 4.1.2.
    pub const ALL: [Heuristic; 12] = [
        Heuristic::FOrig,
        Heuristic::FAndC,
        Heuristic::FOrNc,
        Heuristic::Constrain,
        Heuristic::Restrict,
        Heuristic::OsmTd,
        Heuristic::OsmNv,
        Heuristic::OsmCp,
        Heuristic::OsmBt,
        Heuristic::TsmTd,
        Heuristic::TsmCp,
        Heuristic::OptLv,
    ];

    /// The eight distinct sibling-matching heuristics (paper Table 2).
    pub const SIBLING: [Heuristic; 8] = [
        Heuristic::Constrain,
        Heuristic::Restrict,
        Heuristic::OsmTd,
        Heuristic::OsmNv,
        Heuristic::OsmCp,
        Heuristic::OsmBt,
        Heuristic::TsmTd,
        Heuristic::TsmCp,
    ];

    /// The paper's name for the heuristic.
    pub fn name(self) -> &'static str {
        match self {
            Heuristic::FOrig => "f_orig",
            Heuristic::FAndC => "f_and_c",
            Heuristic::FOrNc => "f_or_nc",
            Heuristic::Constrain => "const",
            Heuristic::Restrict => "restr",
            Heuristic::OsmTd => "osm_td",
            Heuristic::OsmNv => "osm_nv",
            Heuristic::OsmCp => "osm_cp",
            Heuristic::OsmBt => "osm_bt",
            Heuristic::TsmTd => "tsm_td",
            Heuristic::TsmCp => "tsm_cp",
            Heuristic::OptLv => "opt_lv",
            Heuristic::Scheduled => "sched",
        }
    }

    /// The sibling-matcher configuration, for the heuristics that have one.
    pub fn sibling_config(self) -> Option<SiblingConfig> {
        let cfg = match self {
            Heuristic::Constrain => SiblingConfig::new(MatchCriterion::Osdm),
            Heuristic::Restrict => SiblingConfig::new(MatchCriterion::Osdm).no_new_vars(true),
            Heuristic::OsmTd => SiblingConfig::new(MatchCriterion::Osm),
            Heuristic::OsmNv => SiblingConfig::new(MatchCriterion::Osm).no_new_vars(true),
            Heuristic::OsmCp => SiblingConfig::new(MatchCriterion::Osm).match_complement(true),
            Heuristic::OsmBt => SiblingConfig::new(MatchCriterion::Osm)
                .match_complement(true)
                .no_new_vars(true),
            Heuristic::TsmTd => SiblingConfig::new(MatchCriterion::Tsm),
            Heuristic::TsmCp => SiblingConfig::new(MatchCriterion::Tsm).match_complement(true),
            _ => return None,
        };
        Some(cfg)
    }

    /// Runs the heuristic on `[f, c]` and returns a cover.
    ///
    /// # Panics
    ///
    /// Panics if `isf.c` is the zero function (except for the trivial
    /// heuristics, which are total).
    pub fn minimize(self, bdd: &mut Bdd, isf: Isf) -> Edge {
        match self {
            Heuristic::FOrig => isf.f,
            Heuristic::FAndC => isf.onset(bdd),
            Heuristic::FOrNc => isf.upper(bdd),
            Heuristic::OptLv => opt_lv(bdd, isf, CliqueOptions::default()),
            Heuristic::Scheduled => Schedule::default().apply(bdd, isf),
            _ => {
                let cfg = self.sibling_config().expect("sibling heuristic");
                generic_td(bdd, isf, cfg)
            }
        }
    }

    /// Runs the heuristic under a resource budget, degrading gracefully.
    ///
    /// The budget is armed on entry and cleared before returning. When a
    /// step blows the budget it is skipped and recorded in the
    /// [`MinReport`]; the returned edge is **always** a valid cover of
    /// `[f, c]` no larger than `f` itself (worst case `f`). The
    /// multi-step heuristics — [`Heuristic::OptLv`] skips individual
    /// level passes, [`Heuristic::Scheduled`] follows the schedule's
    /// degradation ladder — keep whatever completed; the single-shot
    /// heuristics fall back to `f` wholesale.
    ///
    /// With [`Budget::UNLIMITED`] the cover equals
    /// [`Heuristic::minimize`]'s, modulo the final size clamp.
    ///
    /// # Panics
    ///
    /// Panics if `isf.c` is the zero function (except for the trivial
    /// heuristics, which are total).
    pub fn minimize_budgeted(self, bdd: &mut Bdd, isf: Isf, budget: Budget) -> (Edge, MinReport) {
        match self {
            Heuristic::FOrig => {
                let mut report = MinReport::new();
                report.push_completed(StepKind::Direct, None);
                (isf.f, report)
            }
            Heuristic::FAndC | Heuristic::FOrNc => {
                let mut report = MinReport::new();
                bdd.set_budget(budget);
                let attempt = if self == Heuristic::FAndC {
                    isf.try_onset(bdd)
                } else {
                    isf.try_upper(bdd)
                };
                let candidate = match attempt {
                    Ok(g) => {
                        report.push_completed(StepKind::Direct, None);
                        g
                    }
                    Err(e) => {
                        report.push_skipped(StepKind::Direct, None, e);
                        isf.f
                    }
                };
                bdd.clear_budget();
                let g = clamp_to_f(bdd, isf, candidate, &mut report);
                (g, report)
            }
            Heuristic::OptLv => {
                assert!(!isf.c.is_zero(), "opt_lv: care set must be non-empty");
                let mut report = MinReport::new();
                bdd.set_budget(budget);
                let mut cur = isf;
                let n = bdd.num_vars() as u32;
                for lvl in 0..n {
                    match minimize_at_level_budgeted(
                        bdd,
                        cur,
                        Var(lvl),
                        MatchCriterion::Tsm,
                        CliqueOptions::default(),
                        None,
                    ) {
                        Ok(next) => {
                            report.push_completed(StepKind::TsmLevel, Some(lvl));
                            cur = next;
                        }
                        Err(e) => report.push_skipped(StepKind::TsmLevel, Some(lvl), e),
                    }
                    if cur.c.is_one() {
                        break;
                    }
                }
                bdd.clear_budget();
                // As in opt_lv, remaining DC points take the
                // representative's value; cur i-covers isf throughout.
                let g = clamp_to_f(bdd, isf, cur.f, &mut report);
                (g, report)
            }
            Heuristic::Scheduled => Schedule::default().apply_with_report(bdd, isf, budget),
            _ => {
                let cfg = self.sibling_config().expect("sibling heuristic");
                let mut report = MinReport::new();
                bdd.set_budget(budget);
                let candidate = match generic_td_budgeted(bdd, isf, cfg) {
                    Ok(g) => {
                        report.push_completed(StepKind::Direct, None);
                        g
                    }
                    Err(e) => {
                        report.push_skipped(StepKind::Direct, None, e);
                        isf.f
                    }
                };
                bdd.clear_budget();
                let g = clamp_to_f(bdd, isf, candidate, &mut report);
                (g, report)
            }
        }
    }

    /// Like [`Heuristic::minimize`] but clamps the result: if the heuristic
    /// *increased* the size over `f` itself, `f` is returned instead
    /// (the practical guard discussed after paper Proposition 6).
    pub fn minimize_checked(self, bdd: &mut Bdd, isf: Isf) -> MinimizeOutcome {
        let g = self.minimize(bdd, isf);
        let result_size = bdd.size(g);
        let orig_size = bdd.size(isf.f);
        if result_size > orig_size {
            MinimizeOutcome {
                cover: isf.f,
                size: orig_size,
                fell_back_to_f: true,
            }
        } else {
            MinimizeOutcome {
                cover: g,
                size: result_size,
                fell_back_to_f: false,
            }
        }
    }
}

/// The unconditional soundness clamp of the budgeted paths, run with the
/// budget cleared: accept the candidate only if it is a valid cover
/// (Definition 1) no larger than `f`; otherwise return `f` itself.
fn clamp_to_f(bdd: &mut Bdd, isf: Isf, candidate: Edge, report: &mut MinReport) -> Edge {
    if isf.is_cover(bdd, candidate) && bdd.size(candidate) <= bdd.size(isf.f) {
        candidate
    } else {
        report.fell_back_to_f = true;
        isf.f
    }
}

impl std::fmt::Display for Heuristic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown heuristic name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseHeuristicError {
    name: String,
}

impl std::fmt::Display for ParseHeuristicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown heuristic {:?}", self.name)
    }
}

impl std::error::Error for ParseHeuristicError {}

impl std::str::FromStr for Heuristic {
    type Err = ParseHeuristicError;

    /// Parses the paper's heuristic names (`const`, `restr`, `osm_bt`, …),
    /// also accepting the long spellings `constrain` and `restrict`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let all = Heuristic::ALL.into_iter().chain([Heuristic::Scheduled]);
        for h in all {
            if h.name() == s {
                return Ok(h);
            }
        }
        match s {
            "constrain" => Ok(Heuristic::Constrain),
            "restrict" => Ok(Heuristic::Restrict),
            _ => Err(ParseHeuristicError { name: s.to_owned() }),
        }
    }
}

/// Result of a checked minimization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MinimizeOutcome {
    /// The returned cover.
    pub cover: Edge,
    /// Its size `|cover|`.
    pub size: usize,
    /// True if the raw heuristic result was larger than `f` and `f` was
    /// returned instead.
    pub fell_back_to_f: bool,
}

/// Runs every heuristic in [`Heuristic::ALL`] and returns `(results, min)`:
/// the per-heuristic covers and the paper's `min` pseudo-heuristic (the
/// smallest result found).
pub fn minimize_all(bdd: &mut Bdd, isf: Isf) -> (Vec<(Heuristic, Edge)>, Edge) {
    let mut results = Vec::with_capacity(Heuristic::ALL.len());
    let mut best: Option<(usize, Edge)> = None;
    for h in Heuristic::ALL {
        let g = h.minimize(bdd, isf);
        let size = bdd.size(g);
        if best.is_none_or(|(bs, _)| size < bs) {
            best = Some((size, g));
        }
        results.push((h, g));
    }
    (results, best.expect("at least one heuristic").1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddmin_bdd::Var;

    #[test]
    fn all_heuristics_cover_all_specs() {
        let specs = [
            "d1 01",
            "d1 01 1d 01",
            "1d d1 d0 0d",
            "0d d1 10 01 11 d0 d1 00",
            "dd 01 11 d0",
        ];
        for spec in specs {
            let mut bdd = Bdd::new(4);
            let (f, c) = bdd.from_leaf_spec(spec).unwrap();
            let isf = Isf::new(f, c);
            if isf.c.is_zero() {
                continue;
            }
            for h in Heuristic::ALL.into_iter().chain([Heuristic::Scheduled]) {
                let g = h.minimize(&mut bdd, isf);
                assert!(isf.is_cover(&mut bdd, g), "{h} broke cover on {spec}");
            }
        }
    }

    #[test]
    fn min_is_never_larger_than_anyone() {
        let mut bdd = Bdd::new(3);
        let (f, c) = bdd.from_leaf_spec("d1 01 1d 01").unwrap();
        let isf = Isf::new(f, c);
        let (results, min) = minimize_all(&mut bdd, isf);
        let min_size = bdd.size(min);
        for (h, g) in results {
            assert!(min_size <= bdd.size(g), "min beaten by {h}");
        }
        assert!(isf.is_cover(&mut bdd, min));
    }

    #[test]
    fn checked_minimize_clamps_growth() {
        // Construct an instance where constrain grows the BDD: Madre's
        // example with c = x·f + ¬x·¬f for f independent of x.
        let mut bdd = Bdd::new(5);
        let x = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let c2 = bdd.var(Var(2));
        let d = bdd.var(Var(3));
        let e = bdd.var(Var(4));
        let f = {
            let t1 = bdd.xor(b, c2);
            let t2 = bdd.xor(d, e);
            let big = bdd.or(t1, t2);
            bdd.and(big, d)
        };
        let nf = bdd.not(f);
        let care = bdd.ite(x, f, nf);
        let isf = Isf::new(f, care);
        let raw = Heuristic::Constrain.minimize(&mut bdd, isf);
        let checked = Heuristic::Constrain.minimize_checked(&mut bdd, isf);
        assert!(isf.is_cover(&mut bdd, checked.cover));
        assert!(checked.size <= bdd.size(isf.f));
        if bdd.size(raw) > bdd.size(isf.f) {
            assert!(checked.fell_back_to_f);
            assert_eq!(checked.cover, isf.f);
        }
    }

    #[test]
    fn trivial_heuristics_shapes() {
        let mut bdd = Bdd::new(2);
        let (f, c) = bdd.from_leaf_spec("d1 01").unwrap();
        let isf = Isf::new(f, c);
        assert_eq!(Heuristic::FOrig.minimize(&mut bdd, isf), f);
        let onset = isf.onset(&mut bdd);
        assert_eq!(Heuristic::FAndC.minimize(&mut bdd, isf), onset);
        let upper = isf.upper(&mut bdd);
        assert_eq!(Heuristic::FOrNc.minimize(&mut bdd, isf), upper);
    }

    #[test]
    fn parse_round_trip() {
        for h in Heuristic::ALL.into_iter().chain([Heuristic::Scheduled]) {
            let parsed: Heuristic = h.name().parse().unwrap();
            assert_eq!(parsed, h);
        }
        assert_eq!("constrain".parse::<Heuristic>(), Ok(Heuristic::Constrain));
        assert_eq!("restrict".parse::<Heuristic>(), Ok(Heuristic::Restrict));
        assert!("bogus".parse::<Heuristic>().is_err());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Heuristic::ALL.iter().map(|h| h.name()).collect();
        names.push(Heuristic::Scheduled.name());
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    fn sibling_configs_match_table2() {
        assert_eq!(
            Heuristic::Constrain.sibling_config().unwrap().paper_name(),
            "constrain"
        );
        assert_eq!(
            Heuristic::Restrict.sibling_config().unwrap().paper_name(),
            "restrict"
        );
        assert_eq!(
            Heuristic::OsmBt.sibling_config().unwrap().paper_name(),
            "osm_bt"
        );
        assert!(Heuristic::OptLv.sibling_config().is_none());
        assert!(Heuristic::FOrig.sibling_config().is_none());
    }

    #[test]
    fn cube_care_is_optimal_for_all_sibling_heuristics() {
        // Theorem 7 (and its analogues): when c is a cube every sibling
        // heuristic returns a minimum cover. Verify against exhaustive
        // search over 3-variable instances.
        let mut bdd = Bdd::new(3);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let cc = bdd.var(Var(2));
        let nb = bdd.not(b);
        let cubes = [a, nb, bdd.and(a, nb), bdd.and(b, cc)];
        let x = bdd.xor(a, b);
        let fs = [bdd.xor(x, cc), bdd.or(x, cc), bdd.and(a, cc)];
        for &f in &fs {
            for &cube in &cubes {
                let isf = Isf::new(f, cube);
                let best = exhaustive_min_size(&mut bdd, isf);
                for h in Heuristic::SIBLING {
                    let g = h.minimize(&mut bdd, isf);
                    assert_eq!(
                        bdd.size(g),
                        best,
                        "{h} not optimal for cube care"
                    );
                }
            }
        }
    }

    fn exhaustive_min_size(bdd: &mut Bdd, isf: Isf) -> usize {
        let mut best = usize::MAX;
        for table in 0u32..256 {
            let mut g = Edge::ZERO;
            for row in 0..8 {
                if table >> row & 1 == 1 {
                    let lits: Vec<(Var, bool)> = (0..3)
                        .map(|v| (Var(v as u32), row >> (2 - v) & 1 == 1))
                        .collect();
                    let cube = bddmin_bdd::Cube::new(lits).to_edge(bdd);
                    g = bdd.or(g, cube);
                }
            }
            if isf.is_cover(bdd, g) {
                best = best.min(bdd.size(g));
            }
        }
        best
    }
}
