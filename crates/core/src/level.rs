//! Minimization at a level (paper Section 3.3).
//!
//! Instead of the local sibling matches of [`generic_td`](crate::generic_td),
//! this pass takes a global view: it gathers every incompletely specified
//! sub-function `[f_j, c_j]` hanging *below* a chosen level `i` (both BDDs
//! pointed to from level `i` or above), builds a **matching graph** under a
//! criterion, solves the *function matching minimization* (FMM) problem on
//! it, and rewrites `[f, c]` with the matched i-covers:
//!
//! * `osm` → directed matching graph (DMG); FMM is solved exactly by
//!   mapping every vertex to a sink (paper Proposition 10). By Theorem 12
//!   this never loses the optimum below level `i`.
//! * `tsm` → undirected matching graph (UMG); FMM is exactly minimum clique
//!   cover (paper Theorem 15), which is NP-complete, so a greedy clique
//!   construction is used with the paper's two optimizations: vertices are
//!   processed in decreasing degree order, and edges are preferred by
//!   ascending *distance* between the functions' access paths.
//!
//! The driver [`opt_lv`] visits levels top-down with tsm, which is the
//! heuristic evaluated in the paper's experiments.
//!
//! Building the matching graph is the schedule's most expensive step —
//! Θ(n²) exact BDD matching checks over the gathered set — so the solvers
//! run behind a **refutation-only acceleration layer** ([`LevelAccel`]):
//! 64-lane semantic signatures cheaply disprove most non-matching pairs
//! before any BDD work (see [`crate::sigfilter`]), symmetric tsm verdicts
//! are memoized in the manager so regathered levels never re-prove a
//! pair, and the graph itself is a dense bitset whose clique-cover
//! operations are word-parallel. None of it changes results: every
//! filter is a proof of non-matching, so the accelerated solvers are
//! byte-identical to the plain ones (asserted by the differential suite
//! and the `sig-invariance` verify oracle).

use std::collections::{HashMap, HashSet};

use bddmin_bdd::{Bdd, BudgetExceeded, Edge, FastBuild, SigEvaluator, Var};

use crate::bitset::{BitMatrix, Bitset};
use crate::isf::Isf;
use crate::matching::{
    matches_directed_budgeted, matches_tsm_pair_memoized, merge_tsm_many_budgeted, MatchCriterion,
};
use crate::memo_tags::subst_tag;
use crate::sigfilter::{isf_sig, refutes_osm, refutes_tsm, IsfSig};
use crate::{BUDGET_PANIC, MAX_REC_DEPTH};

/// A sub-function gathered below the target level, together with the
/// variable-assignment path used to reach it (for the distance weight).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GatheredFunction {
    /// The sub-function pair as encountered in the traversal.
    pub isf: Isf,
    /// `path[v]` is the value of `Var(v)` on the access path: 0, 1, or 2
    /// if the variable does not appear on the path.
    pub path: Vec<u8>,
}

/// The paper's distance between the access paths of two functions rooted at
/// the same level (§3.3.2):
/// `dist(g,h) = Σ |x_i^g − x_i^h| · 2^(k−i−1)`, skipping positions where
/// either path has a 2.
pub fn path_distance(a: &[u8], b: &[u8]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let k = a.len();
    let mut d = 0u64;
    for i in 0..k {
        if a[i] == 2 || b[i] == 2 {
            continue;
        }
        if a[i] != b[i] {
            d += 1u64 << (k - i - 1);
        }
    }
    d
}

/// Which sub-functions a level pass collects (paper §3.3.1's two
/// set-limiting methods — they are orthogonal and can be combined with
/// the size `limit`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GatherMode {
    /// Every pair hanging below the level (the paper's default:
    /// "we do not limit the size of the set, preferring to trade runtime
    /// for quality").
    #[default]
    All,
    /// Only pairs whose `f` component is rooted exactly one level below —
    /// "effectively minimizes the number of nodes at level i + 1".
    RootedJustBelow,
}

/// Gathers the unique sub-function pairs of `[f, c]` whose `f` and `c`
/// components are both rooted strictly below `level`, pointed to from
/// `level` or above (paper §3.3.1). Pairs are deduplicated on the raw
/// `(f, c)` edges; the first (depth-first) access path is kept.
///
/// If `limit` is `Some(n)`, gathering stops after `n` unique pairs (the
/// paper's first set-limiting method).
pub fn gather_below_level(
    bdd: &mut Bdd,
    isf: Isf,
    level: Var,
    limit: Option<usize>,
) -> Vec<GatheredFunction> {
    gather_below_level_mode(bdd, isf, level, limit, GatherMode::All)
}

/// [`gather_below_level`] with an explicit [`GatherMode`].
pub fn gather_below_level_mode(
    bdd: &mut Bdd,
    isf: Isf,
    level: Var,
    limit: Option<usize>,
    mode: GatherMode,
) -> Vec<GatheredFunction> {
    let mut out: Vec<GatheredFunction> = Vec::new();
    let mut seen: HashSet<(Edge, Edge), FastBuild> = HashSet::default();
    let mut path = vec![2u8; level.index() + 1];
    gather_rec(bdd, isf, level, limit, &mut out, &mut seen, &mut path);
    if let GatherMode::RootedJustBelow = mode {
        let next = Var(level.0 + 1);
        out.retain(|g| bdd.level(g.isf.f) == next);
    }
    out
}

fn gather_rec(
    bdd: &mut Bdd,
    isf: Isf,
    level: Var,
    limit: Option<usize>,
    out: &mut Vec<GatheredFunction>,
    seen: &mut HashSet<(Edge, Edge), FastBuild>,
    path: &mut Vec<u8>,
) {
    if let Some(n) = limit {
        if out.len() >= n {
            return;
        }
    }
    let fl = bdd.level(isf.f);
    let cl = bdd.level(isf.c);
    if fl > level && cl > level {
        if seen.insert((isf.f, isf.c)) {
            out.push(GatheredFunction {
                isf,
                path: path.clone(),
            });
        }
        return;
    }
    let top = fl.min(cl);
    let (f_t, f_e) = bdd.cof_at(isf.f, top);
    let (c_t, c_e) = bdd.cof_at(isf.c, top);
    path[top.index()] = 1;
    gather_rec(bdd, Isf::new(f_t, c_t), level, limit, out, seen, path);
    path[top.index()] = 0;
    gather_rec(bdd, Isf::new(f_e, c_e), level, limit, out, seen, path);
    path[top.index()] = 2;
}

/// Toggles for the matching-graph acceleration layer. The default is
/// everything on; [`LevelAccel::UNFILTERED`] is the plain path the
/// differential suite and the parity benchmarks replay against. Every
/// setting is refutation-only or a pure memo, so results are identical
/// across all configurations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelAccel {
    /// Refute non-matching pairs with 64-lane semantic signatures before
    /// the exact BDD check (and bucket osm vertex dedup by signature).
    pub sig_filter: bool,
    /// Memoize symmetric tsm verdicts in the manager-owned memo, keyed
    /// on the order-canonicalized ISF pair.
    pub pair_memo: bool,
    /// Testing hook for the `sig-invariance` oracle's mutation gate:
    /// deterministically over-refute surviving pairs, modelling a filter
    /// that drops real matching edges. Never set outside the harness.
    #[doc(hidden)]
    pub sabotage_overrefute: bool,
}

impl Default for LevelAccel {
    fn default() -> Self {
        LevelAccel {
            sig_filter: true,
            pair_memo: true,
            sabotage_overrefute: false,
        }
    }
}

impl LevelAccel {
    /// The unaccelerated reference path: every pair runs the exact check.
    pub const UNFILTERED: LevelAccel = LevelAccel {
        sig_filter: false,
        pair_memo: false,
        sabotage_overrefute: false,
    };
}

/// Signature pairs of a batch of ISFs, computed through one transient
/// evaluator **before** any BDD mutation (the per-node memo inside the
/// evaluator must not survive an allocation or collection).
fn batch_sigs<'a>(bdd: &Bdd, isfs: impl Iterator<Item = &'a Isf>) -> Vec<IsfSig> {
    let mut ev = SigEvaluator::for_bdd(bdd);
    isfs.map(|&isf| isf_sig(&mut ev, bdd, isf)).collect()
}

/// The injected over-refutation of the `BreakSigFilter` mutant: drops the
/// pair (j, k) from the graph whenever the indices have opposite parity.
#[inline]
fn sabotaged(accel: LevelAccel, j: usize, k: usize) -> bool {
    accel.sabotage_overrefute && (j + k) % 2 == 1
}

/// Solves FMM on the gathered set with the **osm** criterion via the DMG
/// sink construction (paper Proposition 10). Returns, for each input index,
/// the i-cover that replaces it.
pub fn solve_fmm_osm(bdd: &mut Bdd, functions: &[Isf]) -> Vec<Isf> {
    solve_fmm_osm_budgeted(bdd, functions, LevelAccel::default()).expect(BUDGET_PANIC)
}

/// [`solve_fmm_osm`] with an explicit [`LevelAccel`] (the unfiltered
/// reference path is `LevelAccel::UNFILTERED`).
pub fn solve_fmm_osm_with(bdd: &mut Bdd, functions: &[Isf], accel: LevelAccel) -> Vec<Isf> {
    solve_fmm_osm_budgeted(bdd, functions, accel).expect(BUDGET_PANIC)
}

/// Checked [`solve_fmm_osm`]: returns [`BudgetExceeded`] instead of
/// running past an armed budget.
pub(crate) fn solve_fmm_osm_budgeted(
    bdd: &mut Bdd,
    functions: &[Isf],
    accel: LevelAccel,
) -> Result<Vec<Isf>, BudgetExceeded> {
    // Collapse equal ISFs (different representatives) to one vertex, so
    // mutually-osm-matching pairs cannot form a 2-cycle and the graph
    // stays acyclic as in the paper's Proposition 10.
    let (vertices, vertex_idx, vsigs) = if accel.sig_filter {
        let sigs = batch_sigs(bdd, functions.iter());
        dedup_by_signature(bdd, functions, &sigs)?
    } else {
        let (v, idx) = dedup_by_canonical_key(bdd, functions)?;
        (v, idx, Vec::new())
    };
    let adj = build_osm_graph_budgeted(bdd, &vertices, &vsigs, accel)?;
    let m = vertices.len();
    let is_sink: Vec<bool> = (0..m).map(|j| adj.row_is_empty(j)).collect();
    // Map every vertex to a sink it can reach; by transitivity a direct
    // edge to some sink exists for every non-sink vertex.
    let mut target: Vec<usize> = (0..m).collect();
    for j in 0..m {
        if is_sink[j] {
            continue;
        }
        let direct = adj.row_indices(j).find(|&k| is_sink[k]);
        target[j] = match direct {
            Some(k) => k,
            None => {
                // Walk edges until a sink is found (cannot cycle: the
                // graph on distinct ISFs is acyclic). A cycle would mean
                // a logic bug upstream; degrade through the structured
                // error channel rather than aborting the whole schedule.
                let mut cur = j;
                let mut steps = 0;
                while !is_sink[cur] {
                    cur = adj.row_first(cur).ok_or(BudgetExceeded::INTERNAL)?;
                    steps += 1;
                    if steps > m {
                        return Err(BudgetExceeded::INTERNAL);
                    }
                }
                cur
            }
        };
    }
    Ok(vertex_idx
        .into_iter()
        .map(|v| vertices[target[v]])
        .collect())
}

/// The plain vertex dedup: compute every canonical key `(f·c, c)` with
/// BDD operations and group through a hash map.
fn dedup_by_canonical_key(
    bdd: &mut Bdd,
    functions: &[Isf],
) -> Result<(Vec<Isf>, Vec<usize>), BudgetExceeded> {
    let n = functions.len();
    let mut canon: Vec<(Edge, Edge)> = Vec::with_capacity(n);
    for isf in functions {
        canon.push(isf.try_canonical_key(bdd)?);
    }
    let mut vertex_of: HashMap<(Edge, Edge), usize, FastBuild> = HashMap::default();
    let mut vertices: Vec<Isf> = Vec::new();
    let mut vertex_idx: Vec<usize> = Vec::with_capacity(n);
    for (i, key) in canon.iter().enumerate() {
        let v = *vertex_of.entry(*key).or_insert_with(|| {
            vertices.push(functions[i]);
            vertices.len() - 1
        });
        vertex_idx.push(v);
    }
    Ok((vertices, vertex_idx))
}

/// Deduplicated vertex set: the distinct ISFs, the vertex index each input
/// function maps to, and the signature of each distinct vertex.
type DedupedVertices = (Vec<Isf>, Vec<usize>, Vec<IsfSig>);

/// Signature-bucketed vertex dedup: equal ISFs have equal signature pairs
/// (signatures are exact and representative-independent), so buckets by
/// signature partition coarser than canonical-key classes. The exact
/// canonical key — the only BDD work here — is computed lazily, and only
/// inside buckets that actually collide; singleton buckets never touch
/// the manager at all. First-occurrence vertex order is preserved, so the
/// result is identical to [`dedup_by_canonical_key`].
fn dedup_by_signature(
    bdd: &mut Bdd,
    functions: &[Isf],
    sigs: &[IsfSig],
) -> Result<DedupedVertices, BudgetExceeded> {
    let n = functions.len();
    let mut buckets: HashMap<(u64, u64), Vec<usize>, FastBuild> = HashMap::default();
    let mut vertices: Vec<Isf> = Vec::new();
    let mut vsigs: Vec<IsfSig> = Vec::new();
    let mut canon: Vec<Option<(Edge, Edge)>> = Vec::new();
    let mut vertex_idx: Vec<usize> = Vec::with_capacity(n);
    for (i, &isf) in functions.iter().enumerate() {
        let s = sigs[i];
        let bucket = buckets.entry((s.on, s.c)).or_default();
        let mut found = None;
        let mut my_key = None;
        if !bucket.is_empty() {
            let key = isf.try_canonical_key(bdd)?;
            my_key = Some(key);
            for &v in bucket.iter() {
                if canon[v].is_none() {
                    canon[v] = Some(vertices[v].try_canonical_key(bdd)?);
                }
                if canon[v] == Some(key) {
                    found = Some(v);
                    break;
                }
            }
        }
        match found {
            Some(v) => vertex_idx.push(v),
            None => {
                let v = vertices.len();
                vertices.push(isf);
                vsigs.push(s);
                canon.push(my_key);
                bucket.push(v);
                vertex_idx.push(v);
            }
        }
    }
    Ok((vertices, vertex_idx, vsigs))
}

/// Builds the directed osm matching graph over deduplicated vertices:
/// edge j → k iff vertex j osm-matches vertex k. `vsigs` is non-empty iff
/// the signature filter is on.
fn build_osm_graph_budgeted(
    bdd: &mut Bdd,
    vertices: &[Isf],
    vsigs: &[IsfSig],
    accel: LevelAccel,
) -> Result<BitMatrix, BudgetExceeded> {
    let m = vertices.len();
    let mut adj = BitMatrix::new(m);
    for j in 0..m {
        for k in 0..m {
            if j == k {
                continue;
            }
            if accel.sig_filter && (refutes_osm(vsigs[j], vsigs[k]) || sabotaged(accel, j, k)) {
                continue;
            }
            if matches_directed_budgeted(bdd, MatchCriterion::Osm, vertices[j], vertices[k])? {
                adj.set(j, k);
            }
        }
    }
    Ok(adj)
}

/// Controls for the greedy clique cover used by tsm level matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CliqueOptions {
    /// Process vertices in decreasing order of degree (paper's first
    /// optimization) instead of input order.
    pub order_by_degree: bool,
    /// Grow cliques along edges of ascending path distance (paper's second
    /// optimization) so nearby functions match first.
    pub prefer_nearby: bool,
}

impl Default for CliqueOptions {
    fn default() -> Self {
        CliqueOptions {
            order_by_degree: true,
            prefer_nearby: true,
        }
    }
}

/// Solves FMM on the gathered set with the **tsm** criterion by greedy
/// clique cover (paper Theorem 15 + §3.3.2). Returns, for each input index,
/// the merged i-cover that replaces it.
pub fn solve_fmm_tsm(
    bdd: &mut Bdd,
    functions: &[GatheredFunction],
    options: CliqueOptions,
) -> Vec<Isf> {
    solve_fmm_tsm_budgeted(bdd, functions, options, LevelAccel::default()).expect(BUDGET_PANIC)
}

/// [`solve_fmm_tsm`] with an explicit [`LevelAccel`] (the unfiltered
/// reference path is `LevelAccel::UNFILTERED`).
pub fn solve_fmm_tsm_with(
    bdd: &mut Bdd,
    functions: &[GatheredFunction],
    options: CliqueOptions,
    accel: LevelAccel,
) -> Vec<Isf> {
    solve_fmm_tsm_budgeted(bdd, functions, options, accel).expect(BUDGET_PANIC)
}

/// Builds the undirected tsm matching graph: edge {j, k} iff the two
/// gathered ISFs tsm-match. Surviving pairs run the exact check through
/// the manager-owned pair memo when `accel.pair_memo` is on.
fn build_tsm_graph_budgeted(
    bdd: &mut Bdd,
    functions: &[GatheredFunction],
    accel: LevelAccel,
) -> Result<BitMatrix, BudgetExceeded> {
    let n = functions.len();
    let sigs = if accel.sig_filter {
        batch_sigs(bdd, functions.iter().map(|g| &g.isf))
    } else {
        Vec::new()
    };
    let mut adj = BitMatrix::new(n);
    for j in 0..n {
        for k in (j + 1)..n {
            if accel.sig_filter && (refutes_tsm(sigs[j], sigs[k]) || sabotaged(accel, j, k)) {
                continue;
            }
            let matched = if accel.pair_memo {
                matches_tsm_pair_memoized(bdd, functions[j].isf, functions[k].isf)?
            } else {
                matches_directed_budgeted(
                    bdd,
                    MatchCriterion::Tsm,
                    functions[j].isf,
                    functions[k].isf,
                )?
            };
            if matched {
                adj.set(j, k);
                adj.set(k, j);
            }
        }
    }
    Ok(adj)
}

/// Checked [`solve_fmm_tsm`]: returns [`BudgetExceeded`] instead of
/// running past an armed budget. This is the schedule's most expensive
/// step (quadratic matching graph + greedy clique cover), so it is the
/// step budgets most often interrupt.
pub(crate) fn solve_fmm_tsm_budgeted(
    bdd: &mut Bdd,
    functions: &[GatheredFunction],
    options: CliqueOptions,
    accel: LevelAccel,
) -> Result<Vec<Isf>, BudgetExceeded> {
    let n = functions.len();
    let adj = build_tsm_graph_budgeted(bdd, functions, accel)?;
    let mut order: Vec<usize> = (0..n).collect();
    if options.order_by_degree {
        order.sort_by_key(|&v| std::cmp::Reverse(adj.row_len(v)));
    }
    let mut clique_of: Vec<Option<usize>> = vec![None; n];
    let mut cliques: Vec<Vec<usize>> = Vec::new();
    for &v in &order {
        if clique_of[v].is_some() {
            continue;
        }
        let id = cliques.len();
        let mut members = vec![v];
        let mut members_bs = Bitset::new(n);
        members_bs.insert(v);
        clique_of[v] = Some(id);
        // Candidate edges out of the current clique, optionally sorted by
        // ascending distance to the seed vertex's path. `in_frontier`
        // makes the dedup of re-reachable candidates O(1); re-enqueued
        // duplicates in the old list code were no-ops anyway (members
        // only grow, so a rejection is permanent and an acceptance is
        // caught by the `clique_of` check), so skipping them is
        // result-identical.
        let mut frontier: Vec<usize> = adj.row_indices(v).collect();
        let mut in_frontier = Bitset::new(n);
        frontier.retain(|&w| clique_of[w].is_none());
        for &w in &frontier {
            in_frontier.insert(w);
        }
        if options.prefer_nearby {
            frontier.sort_by_key(|&w| path_distance(&functions[v].path, &functions[w].path));
        }
        let mut idx = 0;
        while idx < frontier.len() {
            let w = frontier[idx];
            idx += 1;
            if clique_of[w].is_some() {
                continue;
            }
            // w joins iff it is adjacent to every current member —
            // word-parallel subset test on the adjacency row.
            if members_bs.subset_of(adj.row(w)) {
                clique_of[w] = Some(id);
                // New edges reachable through w.
                let mut extra: Vec<usize> = adj
                    .row_indices(w)
                    .filter(|&x| clique_of[x].is_none() && !in_frontier.contains(x))
                    .collect();
                if options.prefer_nearby {
                    extra.sort_by_key(|&x| {
                        path_distance(&functions[w].path, &functions[x].path)
                    });
                }
                for &x in &extra {
                    in_frontier.insert(x);
                }
                frontier.extend(extra);
                members.push(w);
                members_bs.insert(w);
            }
        }
        cliques.push(members);
    }
    // Merge each clique into its common i-cover.
    let mut merged: Vec<Isf> = Vec::with_capacity(cliques.len());
    for members in &cliques {
        let isfs: Vec<Isf> = members.iter().map(|&j| functions[j].isf).collect();
        merged.push(merge_tsm_many_budgeted(bdd, &isfs)?);
    }
    Ok((0..n)
        .map(|j| merged[clique_of[j].expect("all vertices covered")])
        .collect())
}

/// The edge set of the undirected tsm matching graph over the gathered
/// functions, as `(j, k)` pairs with `j < k`, ascending. Exposed for the
/// differential suite: the filtered and unfiltered graphs must be equal.
#[doc(hidden)]
pub fn tsm_matching_pairs(
    bdd: &mut Bdd,
    functions: &[GatheredFunction],
    accel: LevelAccel,
) -> Vec<(usize, usize)> {
    let adj = build_tsm_graph_budgeted(bdd, functions, accel).expect(BUDGET_PANIC);
    let mut pairs = Vec::new();
    for j in 0..adj.len() {
        pairs.extend(adj.row_indices(j).filter(|&k| j < k).map(|k| (j, k)));
    }
    pairs
}

/// The edge set of the directed osm matching graph over the
/// **deduplicated** vertices, as `(j, k)` pairs, ascending. Exposed for
/// the differential suite.
#[doc(hidden)]
pub fn osm_matching_pairs(
    bdd: &mut Bdd,
    functions: &[Isf],
    accel: LevelAccel,
) -> Vec<(usize, usize)> {
    let (vertices, _idx, vsigs) = if accel.sig_filter {
        let sigs = batch_sigs(bdd, functions.iter());
        dedup_by_signature(bdd, functions, &sigs).expect(BUDGET_PANIC)
    } else {
        let (v, idx) = dedup_by_canonical_key(bdd, functions).expect(BUDGET_PANIC);
        (v, idx, Vec::new())
    };
    let adj = build_osm_graph_budgeted(bdd, &vertices, &vsigs, accel).expect(BUDGET_PANIC);
    let mut pairs = Vec::new();
    for j in 0..adj.len() {
        pairs.extend(adj.row_indices(j).map(|k| (j, k)));
    }
    pairs
}

/// Rewrites `[f, c]`, substituting `replacements[j]` for the `j`-th gathered
/// pair, and returns the new ISF. Pairs map one-to-one: the traversal
/// mirrors [`gather_below_level`].
pub fn substitute_below_level(
    bdd: &mut Bdd,
    isf: Isf,
    level: Var,
    gathered: &[GatheredFunction],
    replacements: &[Isf],
) -> Isf {
    substitute_below_level_budgeted(bdd, isf, level, gathered, replacements).expect(BUDGET_PANIC)
}

/// Checked [`substitute_below_level`].
pub(crate) fn substitute_below_level_budgeted(
    bdd: &mut Bdd,
    isf: Isf,
    level: Var,
    gathered: &[GatheredFunction],
    replacements: &[Isf],
) -> Result<Isf, BudgetExceeded> {
    assert_eq!(gathered.len(), replacements.len());
    let map: HashMap<(Edge, Edge), Isf, FastBuild> = gathered
        .iter()
        .zip(replacements.iter())
        .map(|(g, &r)| ((g.isf.f, g.isf.c), r))
        .collect();
    // The result depends on this invocation's substitution map, so the
    // manager-resident memo is used under a fresh salt: entries can never
    // leak into another substitution.
    let tag = subst_tag(bdd.memo_salt());
    subst_rec(bdd, isf, level, &map, tag, 0)
}

fn subst_rec(
    bdd: &mut Bdd,
    isf: Isf,
    level: Var,
    map: &HashMap<(Edge, Edge), Isf, FastBuild>,
    tag: u64,
    depth: u32,
) -> Result<Isf, BudgetExceeded> {
    if depth > MAX_REC_DEPTH {
        return Err(BudgetExceeded::DEPTH);
    }
    let fl = bdd.level(isf.f);
    let cl = bdd.level(isf.c);
    if fl > level && cl > level {
        // Frontier pair: replace if matched, else keep.
        return Ok(map.get(&(isf.f, isf.c)).copied().unwrap_or(isf));
    }
    if let Some((rf, rc)) = bdd.memo_get(tag, isf.f, isf.c) {
        return Ok(Isf { f: rf, c: rc });
    }
    let top = fl.min(cl);
    let (f_t, f_e) = bdd.cof_at(isf.f, top);
    let (c_t, c_e) = bdd.cof_at(isf.c, top);
    let then_r = subst_rec(bdd, Isf::new(f_t, c_t), level, map, tag, depth + 1)?;
    let else_r = subst_rec(bdd, Isf::new(f_e, c_e), level, map, tag, depth + 1)?;
    let v = bdd.try_var_at_level(top)?;
    let nf = bdd.try_ite(v, then_r.f, else_r.f)?;
    let nc = bdd.try_ite(v, then_r.c, else_r.c)?;
    let r = Isf::new(nf, nc);
    bdd.memo_insert(tag, isf.f, isf.c, (r.f, r.c));
    Ok(r)
}

/// One minimization pass at `level` with the given criterion: gather, solve
/// FMM, substitute. Returns the rewritten ISF (paper §3.3).
pub fn minimize_at_level(
    bdd: &mut Bdd,
    isf: Isf,
    level: Var,
    criterion: MatchCriterion,
    options: CliqueOptions,
    limit: Option<usize>,
) -> Isf {
    minimize_at_level_mode(bdd, isf, level, criterion, options, limit, GatherMode::All)
}

/// [`minimize_at_level`] with an explicit [`GatherMode`].
#[allow(clippy::too_many_arguments)]
pub fn minimize_at_level_mode(
    bdd: &mut Bdd,
    isf: Isf,
    level: Var,
    criterion: MatchCriterion,
    options: CliqueOptions,
    limit: Option<usize>,
    mode: GatherMode,
) -> Isf {
    minimize_at_level_mode_budgeted(bdd, isf, level, criterion, options, limit, mode)
        .expect(BUDGET_PANIC)
}

/// Checked [`minimize_at_level`]: returns [`BudgetExceeded`] instead of
/// running past an armed budget. On error the pass's partial work is
/// discarded; the input ISF remains the valid state to continue from, so
/// a scheduler can skip the step and move on (the Theorem 12 degradation
/// ladder).
pub fn minimize_at_level_budgeted(
    bdd: &mut Bdd,
    isf: Isf,
    level: Var,
    criterion: MatchCriterion,
    options: CliqueOptions,
    limit: Option<usize>,
) -> Result<Isf, BudgetExceeded> {
    minimize_at_level_mode_budgeted(bdd, isf, level, criterion, options, limit, GatherMode::All)
}

/// [`minimize_at_level`] with an explicit [`LevelAccel`]. The result is
/// identical for every `accel` — this entry point exists for the
/// differential suite, the `sig-invariance` oracle, and parity
/// benchmarking against [`LevelAccel::UNFILTERED`].
#[allow(clippy::too_many_arguments)]
pub fn minimize_at_level_with(
    bdd: &mut Bdd,
    isf: Isf,
    level: Var,
    criterion: MatchCriterion,
    options: CliqueOptions,
    limit: Option<usize>,
    accel: LevelAccel,
) -> Isf {
    minimize_at_level_accel_budgeted(
        bdd,
        isf,
        level,
        criterion,
        options,
        limit,
        GatherMode::All,
        accel,
    )
    .expect(BUDGET_PANIC)
}

/// Checked [`minimize_at_level_mode`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn minimize_at_level_mode_budgeted(
    bdd: &mut Bdd,
    isf: Isf,
    level: Var,
    criterion: MatchCriterion,
    options: CliqueOptions,
    limit: Option<usize>,
    mode: GatherMode,
) -> Result<Isf, BudgetExceeded> {
    minimize_at_level_accel_budgeted(
        bdd,
        isf,
        level,
        criterion,
        options,
        limit,
        mode,
        LevelAccel::default(),
    )
}

/// The full-parameter pass: gather, solve FMM under `accel`, substitute.
#[allow(clippy::too_many_arguments)]
fn minimize_at_level_accel_budgeted(
    bdd: &mut Bdd,
    isf: Isf,
    level: Var,
    criterion: MatchCriterion,
    options: CliqueOptions,
    limit: Option<usize>,
    mode: GatherMode,
    accel: LevelAccel,
) -> Result<Isf, BudgetExceeded> {
    let gathered = gather_below_level_mode(bdd, isf, level, limit, mode);
    if gathered.len() < 2 {
        return Ok(isf);
    }
    let replacements = match criterion {
        MatchCriterion::Tsm => solve_fmm_tsm_budgeted(bdd, &gathered, options, accel)?,
        MatchCriterion::Osm | MatchCriterion::Osdm => {
            let isfs: Vec<Isf> = gathered.iter().map(|g| g.isf).collect();
            solve_fmm_osm_budgeted(bdd, &isfs, accel)?
        }
    };
    substitute_below_level_budgeted(bdd, isf, level, &gathered, &replacements)
}

/// The paper's `opt_lv` heuristic: visit the levels in increasing order and
/// match functions with tsm at each. Returns a cover of `[f, c]`.
///
/// # Panics
///
/// Panics if `isf.c` is the zero function.
///
/// # Example
///
/// ```
/// use bddmin_bdd::Bdd;
/// use bddmin_core::{opt_lv, CliqueOptions, Isf};
///
/// let mut bdd = Bdd::new(3);
/// let (f, c) = bdd.from_leaf_spec("d1 01 1d 01").unwrap();
/// let isf = Isf::new(f, c);
/// let g = opt_lv(&mut bdd, isf, CliqueOptions::default());
/// assert!(isf.is_cover(&mut bdd, g));
/// ```
pub fn opt_lv(bdd: &mut Bdd, isf: Isf, options: CliqueOptions) -> Edge {
    assert!(!isf.c.is_zero(), "opt_lv: care set must be non-empty");
    let mut cur = isf;
    let n = bdd.num_vars() as u32;
    for lvl in 0..n {
        cur = minimize_at_level(bdd, cur, Var(lvl), MatchCriterion::Tsm, options, None);
        if cur.c.is_one() {
            break;
        }
    }
    // Remaining don't-care points (if any) take the representative's value:
    // the representative is always a cover of the final ISF, and the final
    // ISF i-covers the original.
    cur.f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sibling::{generic_td, SiblingConfig};

    #[test]
    fn path_distance_examples() {
        // Paper's worked example: paths 1000210 and 1201111 → distance 9.
        let g = [1u8, 0, 0, 0, 2, 1, 0];
        let h = [1u8, 2, 0, 1, 1, 1, 1];
        assert_eq!(path_distance(&g, &h), 9);
        // Siblings differ only in the last position → distance 1.
        let s1 = [1u8, 0, 1];
        let s2 = [1u8, 0, 0];
        assert_eq!(path_distance(&s1, &s2), 1);
        assert_eq!(path_distance(&s1, &s1), 0);
    }

    #[test]
    fn gather_finds_frontier_pairs() {
        let mut bdd = Bdd::new(3);
        let (f, c) = bdd.from_leaf_spec("d1 01 1d 01").unwrap();
        let got = gather_below_level(&mut bdd, Isf::new(f, c), Var(0), None);
        // Below level x1: the two (f,c) branch pairs (deduplicated).
        assert!(!got.is_empty() && got.len() <= 2);
        for g in &got {
            assert!(bdd.level(g.isf.f) > Var(0));
            assert!(bdd.level(g.isf.c) > Var(0));
        }
        // Paths record the x1 decision.
        assert!(got.iter().all(|g| g.path.len() == 1));
        assert!(got.iter().all(|g| g.path[0] == 0 || g.path[0] == 1));
    }

    #[test]
    fn gather_respects_limit() {
        let mut bdd = Bdd::new(4);
        let (f, c) = bdd.from_leaf_spec("0d d1 10 01 11 d0 d1 00").unwrap();
        let all = gather_below_level(&mut bdd, Isf::new(f, c), Var(1), None);
        let limited = gather_below_level(&mut bdd, Isf::new(f, c), Var(1), Some(2));
        assert!(all.len() >= 2);
        assert_eq!(limited.len(), 2);
        assert_eq!(&all[..2], &limited[..]);
    }

    #[test]
    fn fmm_osm_maps_to_sinks() {
        let mut bdd = Bdd::new(3);
        let b = bdd.var(Var(1));
        let c = bdd.var(Var(2));
        let bc = bdd.and(b, c);
        // [b·c, b] osm-matches [c, 1] (a sink); [c,1] matches nothing else.
        let fns = [Isf::new(bc, b), Isf::new(c, Edge::ONE)];
        let solved = solve_fmm_osm(&mut bdd, &fns);
        assert_eq!(solved[1], fns[1], "sink keeps itself");
        assert_eq!(solved[0], fns[1], "non-sink maps to sink");
        for (orig, repl) in fns.iter().zip(&solved) {
            assert!(repl.i_covers(&mut bdd, *orig));
        }
    }

    #[test]
    fn fmm_osm_counts_sinks_as_minimum() {
        // Proposition 10: number of distinct replacements == number of sinks.
        let mut bdd = Bdd::new(3);
        let b = bdd.var(Var(1));
        let c = bdd.var(Var(2));
        let bc = bdd.and(b, c);
        let nb = bdd.not(b);
        let fns = [
            Isf::new(bc, b),          // matches [c, 1]
            Isf::new(c, Edge::ONE),   // sink
            Isf::new(nb, Edge::ONE),  // sink (disagrees with c where b... )
        ];
        let solved = solve_fmm_osm(&mut bdd, &fns);
        let mut uniq: Vec<Isf> = solved.clone();
        uniq.sort_by_key(|i| (i.f.to_bits(), i.c.to_bits()));
        uniq.dedup();
        assert_eq!(uniq.len(), 2);
    }

    #[test]
    fn fmm_osm_handles_equal_isfs_with_different_representatives() {
        // Two pairs denoting the same ISF must collapse (no 2-cycle panic).
        let mut bdd = Bdd::new(3);
        let b = bdd.var(Var(1));
        let c = bdd.var(Var(2));
        let bc = bdd.and(b, c);
        let fns = [Isf::new(bc, b), Isf::new(c, b)]; // equal on care b
        let solved = solve_fmm_osm(&mut bdd, &fns);
        assert_eq!(solved[0], solved[1]);
    }

    #[test]
    fn fmm_tsm_merges_compatible_functions() {
        let mut bdd = Bdd::new(3);
        let b = bdd.var(Var(1));
        let c = bdd.var(Var(2));
        let gathered: Vec<GatheredFunction> = [
            (Isf::new(b, c), vec![1u8]),
            (Isf::new(b, bdd.not(c)), vec![0u8]),
            (Isf::new(bdd.not(b), Edge::ZERO), vec![2u8]),
        ]
        .into_iter()
        .map(|(isf, path)| GatheredFunction { isf, path })
        .collect();
        let solved = solve_fmm_tsm(&mut bdd, &gathered, CliqueOptions::default());
        // All three are pairwise tsm-compatible → single clique.
        assert_eq!(solved[0], solved[1]);
        assert_eq!(solved[1], solved[2]);
        for (g, r) in gathered.iter().zip(&solved) {
            assert!(r.i_covers(&mut bdd, g.isf));
        }
    }

    #[test]
    fn fmm_tsm_separates_conflicts() {
        let mut bdd = Bdd::new(3);
        let b = bdd.var(Var(1));
        let gathered: Vec<GatheredFunction> = [
            (Isf::new(b, Edge::ONE), vec![1u8]),
            (Isf::new(bdd.not(b), Edge::ONE), vec![0u8]),
        ]
        .into_iter()
        .map(|(isf, path)| GatheredFunction { isf, path })
        .collect();
        let solved = solve_fmm_tsm(&mut bdd, &gathered, CliqueOptions::default());
        assert_ne!(solved[0], solved[1]);
        assert_eq!(solved[0], gathered[0].isf);
        assert_eq!(solved[1], gathered[1].isf);
    }

    #[test]
    fn substitution_produces_icover() {
        let mut bdd = Bdd::new(3);
        let (f, c) = bdd.from_leaf_spec("d1 01 1d 01").unwrap();
        let isf = Isf::new(f, c);
        let new_isf = minimize_at_level(
            &mut bdd,
            isf,
            Var(0),
            MatchCriterion::Tsm,
            CliqueOptions::default(),
            None,
        );
        // Care can only grow.
        assert!(bdd.implies_holds(isf.c, new_isf.c));
        // Every cover of the new ISF covers the old one.
        assert!(new_isf.i_covers(&mut bdd, isf));
    }

    #[test]
    fn opt_lv_is_cover_on_paper_instances() {
        for spec in ["d1 01", "d1 01 1d 01", "1d d1 d0 0d", "0d d1 10 01 11 d0 d1 00"] {
            let mut bdd = Bdd::new(4);
            let (f, c) = bdd.from_leaf_spec(spec).unwrap();
            let isf = Isf::new(f, c);
            let g = opt_lv(&mut bdd, isf, CliqueOptions::default());
            assert!(isf.is_cover(&mut bdd, g), "opt_lv broke cover on {spec}");
        }
    }

    #[test]
    fn opt_lv_beats_or_ties_nothing_guaranteed_but_is_sound() {
        // Sanity: compare against constrain on a batch; no ordering is
        // asserted (the paper shows either can win), only soundness.
        let specs = ["d1 01", "1d d1 d0 0d", "dd 01 11 d0"];
        for spec in specs {
            let mut bdd = Bdd::new(3);
            let (f, c) = bdd.from_leaf_spec(spec).unwrap();
            let isf = Isf::new(f, c);
            let g_lv = opt_lv(&mut bdd, isf, CliqueOptions::default());
            let g_con = generic_td(&mut bdd, isf, SiblingConfig::new(MatchCriterion::Osdm));
            assert!(isf.is_cover(&mut bdd, g_lv));
            assert!(isf.is_cover(&mut bdd, g_con));
        }
    }

    #[test]
    fn osm_level_pass_preserves_optimum_below_level() {
        // Theorem 12 smoke test: after an osm pass at level 0, there is
        // still a cover whose node count below level 0 equals the best
        // achievable for the original instance (checked by exhaustive
        // enumeration over this small space).
        let mut bdd = Bdd::new(3);
        let (f, c) = bdd.from_leaf_spec("d1 01 1d 01").unwrap();
        let isf = Isf::new(f, c);
        let best_before = exhaustive_min_below(&mut bdd, isf, Var(0));
        let after = minimize_at_level(
            &mut bdd,
            isf,
            Var(0),
            MatchCriterion::Osm,
            CliqueOptions::default(),
            None,
        );
        let best_after = exhaustive_min_below(&mut bdd, after, Var(0));
        assert_eq!(best_before, best_after);
    }

    /// Minimum over all covers of `isf` of the node count below `level`
    /// (3-variable instances only: enumerates all 256 functions).
    fn exhaustive_min_below(bdd: &mut Bdd, isf: Isf, level: Var) -> usize {
        let mut best = usize::MAX;
        for table in 0u32..256 {
            let mut g = Edge::ZERO;
            for row in 0..8 {
                if table >> row & 1 == 1 {
                    let lits: Vec<(Var, bool)> = (0..3)
                        .map(|v| (Var(v as u32), row >> (2 - v) & 1 == 1))
                        .collect();
                    let cube = bddmin_bdd::Cube::new(lits).to_edge(bdd);
                    g = bdd.or(g, cube);
                }
            }
            if isf.is_cover(bdd, g) {
                best = best.min(bdd.nodes_below_level(g, level));
            }
        }
        best
    }

    #[test]
    fn rooted_just_below_mode_filters() {
        let mut bdd = Bdd::new(4);
        let (f, c) = bdd.from_leaf_spec("0d d1 10 01 11 d0 d1 00").unwrap();
        let isf = Isf::new(f, c);
        let all = gather_below_level_mode(&mut bdd, isf, Var(0), None, GatherMode::All);
        let just =
            gather_below_level_mode(&mut bdd, isf, Var(0), None, GatherMode::RootedJustBelow);
        assert!(just.len() <= all.len());
        for g in &just {
            assert_eq!(bdd.level(g.isf.f), Var(1));
        }
        // The filtered pass is still sound.
        let out = minimize_at_level_mode(
            &mut bdd,
            isf,
            Var(0),
            MatchCriterion::Tsm,
            CliqueOptions::default(),
            None,
            GatherMode::RootedJustBelow,
        );
        assert!(out.i_covers(&mut bdd, isf));
    }

    #[test]
    fn clique_options_toggle() {
        // Both optimization settings must produce sound results.
        let mut bdd = Bdd::new(4);
        let (f, c) = bdd.from_leaf_spec("0d d1 10 01 11 d0 d1 00").unwrap();
        let isf = Isf::new(f, c);
        for order in [false, true] {
            for nearby in [false, true] {
                let opts = CliqueOptions {
                    order_by_degree: order,
                    prefer_nearby: nearby,
                };
                let g = opt_lv(&mut bdd, isf, opts);
                assert!(isf.is_cover(&mut bdd, g), "options {opts:?}");
            }
        }
    }
}
