//! Fixed-size bitsets backing the level matching graphs.
//!
//! The DMG/UMG over `n` gathered functions was previously a
//! `Vec<Vec<usize>>` adjacency list: membership tests were linear scans
//! and "connected to every clique member" walked the whole neighbour
//! list per member. These dense structures make membership O(1) and
//! subset tests word-parallel (`u64` blocks), which is what the greedy
//! clique cover spends its time on once the matching tests themselves
//! are filtered down.

/// A fixed-capacity set of `usize` indices below `n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Bitset {
    blocks: Vec<u64>,
}

impl Bitset {
    /// An empty set over the universe `0..n`.
    pub(crate) fn new(n: usize) -> Bitset {
        Bitset {
            blocks: vec![0; n.div_ceil(64)],
        }
    }

    #[inline]
    pub(crate) fn insert(&mut self, i: usize) {
        self.blocks[i >> 6] |= 1 << (i & 63);
    }

    #[inline]
    pub(crate) fn contains(&self, i: usize) -> bool {
        self.blocks[i >> 6] >> (i & 63) & 1 == 1
    }

    /// True iff every element of `self` is an element of `other`
    /// (word-parallel subset test). Universes must match.
    #[inline]
    pub(crate) fn subset_of(&self, other: &[u64]) -> bool {
        debug_assert_eq!(self.blocks.len(), other.len());
        self.blocks
            .iter()
            .zip(other)
            .all(|(&mine, &theirs)| mine & !theirs == 0)
    }
}

/// A dense `n × n` boolean matrix of `u64` blocks — the adjacency matrix
/// of a matching graph.
#[derive(Clone, Debug)]
pub(crate) struct BitMatrix {
    n: usize,
    words_per_row: usize,
    blocks: Vec<u64>,
}

impl BitMatrix {
    pub(crate) fn new(n: usize) -> BitMatrix {
        let words_per_row = n.div_ceil(64);
        BitMatrix {
            n,
            words_per_row,
            blocks: vec![0; n * words_per_row],
        }
    }

    #[inline]
    pub(crate) fn set(&mut self, row: usize, col: usize) {
        self.blocks[row * self.words_per_row + (col >> 6)] |= 1 << (col & 63);
    }

    #[cfg(test)]
    pub(crate) fn get(&self, row: usize, col: usize) -> bool {
        self.blocks[row * self.words_per_row + (col >> 6)] >> (col & 63) & 1 == 1
    }

    /// The row's blocks, for word-parallel tests against a [`Bitset`].
    #[inline]
    pub(crate) fn row(&self, row: usize) -> &[u64] {
        &self.blocks[row * self.words_per_row..(row + 1) * self.words_per_row]
    }

    /// Number of set bits in the row (the vertex degree).
    #[inline]
    pub(crate) fn row_len(&self, row: usize) -> usize {
        self.row(row).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when the row has no set bits.
    #[inline]
    pub(crate) fn row_is_empty(&self, row: usize) -> bool {
        self.row(row).iter().all(|&w| w == 0)
    }

    /// The set column indices of the row, in ascending order — the same
    /// order the old `Vec<Vec<usize>>` adjacency produced, which keeps
    /// every downstream (stable) sort byte-compatible.
    #[inline]
    pub(crate) fn row_indices(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        self.row(row).iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some((wi << 6) | bit)
            })
        })
    }

    /// The first set column of the row, if any.
    #[inline]
    pub(crate) fn row_first(&self, row: usize) -> Option<usize> {
        self.row(row)
            .iter()
            .position(|&w| w != 0)
            .map(|wi| (wi << 6) | self.row(row)[wi].trailing_zeros() as usize)
    }

    pub(crate) fn len(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_membership_and_subset() {
        let mut s = Bitset::new(130);
        for i in [0, 63, 64, 65, 129] {
            assert!(!s.contains(i));
            s.insert(i);
            assert!(s.contains(i));
        }
        let mut m = BitMatrix::new(130);
        for i in [0, 1, 63, 64, 65, 100, 129] {
            m.set(5, i);
        }
        assert!(s.subset_of(m.row(5)));
        let mut bigger = s.clone();
        bigger.insert(2);
        assert!(!bigger.subset_of(m.row(5)));
    }

    #[test]
    fn matrix_rows_iterate_ascending() {
        let mut m = BitMatrix::new(200);
        let cols = [199, 0, 64, 3, 127, 128];
        for &c in &cols {
            m.set(7, c);
        }
        let got: Vec<usize> = m.row_indices(7).collect();
        assert_eq!(got, vec![0, 3, 64, 127, 128, 199]);
        assert_eq!(m.row_len(7), cols.len());
        assert_eq!(m.row_first(7), Some(0));
        assert!(m.row_is_empty(8));
        assert_eq!(m.row_first(8), None);
        assert!(m.get(7, 64) && !m.get(7, 65));
        assert_eq!(m.len(), 200);
    }

    #[test]
    fn empty_universe_is_fine() {
        let s = Bitset::new(0);
        let m = BitMatrix::new(0);
        assert_eq!(m.len(), 0);
        assert!(s.subset_of(&[]));
    }
}
