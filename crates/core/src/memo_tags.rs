//! Tag encodings for the kernel-resident minimization memo.
//!
//! The manager's memo table (`bddmin_bdd::Bdd::memo_get` /
//! `memo_insert`) keys entries by `(tag, a, b)`, where the 64-bit `tag`
//! is chosen by the caller. Tags are compared for equality, so the only
//! requirement is that the encoding be **injective**: two recursions whose
//! results could differ must never share a tag.
//!
//! Layout used by this crate (bits 61..=63 hold the operation class, so
//! classes can never collide):
//!
//! * sibling matcher (`generic_td`): class 1, `SiblingConfig` in bits
//!   0..=3, an optional per-invocation salt in bits 8..=39 (salt 0 is the
//!   shared key space — sibling results are pure in `(f, c, config)`, so
//!   cross-invocation reuse is sound; the stats variant salts to keep its
//!   traversal counters meaningful).
//! * windowed pass (`windowed_sibling_pass`): class 2, config in bits
//!   56..=59, window `top` in bits 28..=55 and `bottom` in bits 0..=27
//!   (both must fit 28 bits — far beyond any realistic variable count).
//! * below-level substitution (`substitute_below_level`): class 3, salt in
//!   bits 0..=31. Always salted: the result depends on the invocation's
//!   substitution map, which is not part of the `(f, c)` key.
//! * tsm pair matching (`matches_tsm_pair_memoized`): class 4, no salt —
//!   a tsm verdict is pure in the two ISFs' canonical edges, so entries
//!   are shared across invocations (that sharing is the point: windowed
//!   and scheduled passes regather overlapping levels and must never
//!   re-prove a pair). Stored through the manager's predicate-pair API.
//!
//! Bit 60 is reserved by the memo itself to discriminate predicate-pair
//! entries from result entries; tags built here must leave it clear.

use crate::matching::MatchCriterion;
use crate::sibling::SiblingConfig;
use crate::windowed::LevelWindow;

const CLASS_SIBLING: u64 = 1 << 61;
const CLASS_WINDOW: u64 = 2 << 61;
const CLASS_SUBST: u64 = 3 << 61;
const CLASS_TSMPAIR: u64 = 4 << 61;

/// `SiblingConfig` packed into 4 bits (criterion 0..=2, then the flags).
fn config_bits(config: SiblingConfig) -> u64 {
    let crit = match config.criterion {
        MatchCriterion::Osdm => 0u64,
        MatchCriterion::Osm => 1,
        MatchCriterion::Tsm => 2,
    };
    crit | ((config.match_complement as u64) << 2) | ((config.no_new_vars as u64) << 3)
}

/// Tag for the generic top-down sibling matcher. `salt == 0` shares the
/// key space across invocations with the same config.
pub(crate) fn sibling_tag(config: SiblingConfig, salt: u32) -> u64 {
    CLASS_SIBLING | config_bits(config) | ((salt as u64) << 8)
}

/// Tag for a windowed sibling pass: results depend on the window bounds,
/// so they are part of the key.
pub(crate) fn window_tag(config: SiblingConfig, window: LevelWindow) -> u64 {
    debug_assert!(window.top.0 < (1 << 28), "window top overflows tag");
    debug_assert!(window.bottom.0 < (1 << 28), "window bottom overflows tag");
    CLASS_WINDOW
        | (config_bits(config) << 56)
        | ((window.top.0 as u64) << 28)
        | window.bottom.0 as u64
}

/// Tag for one below-level substitution invocation; always freshly salted
/// because the substitution map is call-local state.
pub(crate) fn subst_tag(salt: u32) -> u64 {
    CLASS_SUBST | salt as u64
}

/// Tag for the symmetric tsm pair memo. Unsalted by design: the verdict
/// is a pure function of the order-canonicalized pair of ISFs (canonical
/// edges within one manager), and GC scrubbing keeps stale slots out.
pub(crate) fn tsm_pair_tag() -> u64 {
    CLASS_TSMPAIR
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddmin_bdd::Var;

    fn all_configs() -> Vec<SiblingConfig> {
        let mut v = Vec::new();
        for crit in MatchCriterion::ALL {
            for compl in [false, true] {
                for nnv in [false, true] {
                    v.push(SiblingConfig {
                        criterion: crit,
                        match_complement: compl,
                        no_new_vars: nnv,
                    });
                }
            }
        }
        v
    }

    #[test]
    fn tags_are_injective_across_classes_configs_and_windows() {
        let mut tags = Vec::new();
        for cfg in all_configs() {
            tags.push(sibling_tag(cfg, 0));
            tags.push(sibling_tag(cfg, 1));
            for (t, b) in [(0u32, 0u32), (0, 3), (1, 3), (2, 7)] {
                tags.push(window_tag(cfg, LevelWindow::new(Var(t), Var(b))));
            }
        }
        tags.push(subst_tag(0));
        tags.push(subst_tag(1));
        tags.push(tsm_pair_tag());
        let mut dedup = tags.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), tags.len(), "tag collision");
    }

    #[test]
    fn tags_leave_the_pred_discriminator_bit_clear() {
        for cfg in all_configs() {
            assert_eq!(sibling_tag(cfg, u32::MAX) & (1 << 60), 0);
            let w = LevelWindow::new(Var(0), Var((1 << 28) - 1));
            assert_eq!(window_tag(cfg, w) & (1 << 60), 0);
        }
        assert_eq!(subst_tag(u32::MAX) & (1 << 60), 0);
        assert_eq!(tsm_pair_tag() & (1 << 60), 0);
    }
}
