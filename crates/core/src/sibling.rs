//! The generic top-down sibling matcher (paper Figure 2, Section 3.2).
//!
//! For each node of `[f, c]` visited in a lock-step depth-first traversal,
//! the matcher tries to match the two *sibling* sub-functions
//! `[f_T, c_T]` and `[f_E, c_E]`. A successful match eliminates the parent
//! node (and one child); the configurable parameters
//!
//! 1. matching criterion (`osdm`, `osm`, `tsm`),
//! 2. match-complement flag (also try matching one sibling against the
//!    complement of the other),
//! 3. no-new-vars flag (when `f` is independent of the top care variable,
//!    quantify it out of `c` instead of splitting),
//!
//! yield the 12 combinations of paper Table 2, of which 8 are distinct —
//! including the classic `constrain` (osdm) and `restrict` (osdm +
//! no-new-vars) operators.

use bddmin_bdd::{Bdd, BudgetExceeded, Edge};

use crate::isf::Isf;
use crate::matching::{try_match_budgeted, MatchCriterion};
use crate::memo_tags::sibling_tag;
use crate::{BUDGET_PANIC, MAX_REC_DEPTH};

/// Parameters of the generic sibling matcher (paper Table 2 columns).
///
/// # Example
///
/// ```
/// use bddmin_core::{MatchCriterion, SiblingConfig};
/// let restrict = SiblingConfig::new(MatchCriterion::Osdm).no_new_vars(true);
/// assert_eq!(restrict.criterion, MatchCriterion::Osdm);
/// assert!(restrict.no_new_vars);
/// assert!(!restrict.match_complement);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SiblingConfig {
    /// Which matching criterion to apply to the siblings.
    pub criterion: MatchCriterion,
    /// Also try matching a sibling against the complement of the other
    /// (exploits complement output pointers; keeps the parent but recurses
    /// only once).
    pub match_complement: bool,
    /// The restrict-style rule: if `f` is independent of the top care
    /// variable, existentially quantify it out of `c` rather than splitting.
    pub no_new_vars: bool,
}

impl SiblingConfig {
    /// A configuration with both flags off.
    pub fn new(criterion: MatchCriterion) -> SiblingConfig {
        SiblingConfig {
            criterion,
            match_complement: false,
            no_new_vars: false,
        }
    }

    /// Sets the match-complement flag.
    #[must_use]
    pub fn match_complement(mut self, on: bool) -> SiblingConfig {
        self.match_complement = on;
        self
    }

    /// Sets the no-new-vars flag.
    #[must_use]
    pub fn no_new_vars(mut self, on: bool) -> SiblingConfig {
        self.no_new_vars = on;
        self
    }

    /// The paper's name for this configuration where one exists
    /// (Table 2), e.g. `constrain`, `restrict`, `osm_bt`.
    pub fn paper_name(self) -> &'static str {
        match (self.criterion, self.match_complement, self.no_new_vars) {
            (MatchCriterion::Osdm, false, false) | (MatchCriterion::Osdm, true, false) => {
                "constrain"
            }
            (MatchCriterion::Osdm, false, true) | (MatchCriterion::Osdm, true, true) => "restrict",
            (MatchCriterion::Osm, false, false) => "osm_td",
            (MatchCriterion::Osm, false, true) => "osm_nv",
            (MatchCriterion::Osm, true, false) => "osm_cp",
            (MatchCriterion::Osm, true, true) => "osm_bt",
            (MatchCriterion::Tsm, false, _) => "tsm_td",
            (MatchCriterion::Tsm, true, _) => "tsm_cp",
        }
    }
}

/// Counters describing what one [`generic_td_stats`] run did — useful for
/// understanding *why* a heuristic behaved as it did on an instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SiblingStats {
    /// Nodes visited (cache misses of the traversal).
    pub visited: usize,
    /// Sibling matches made (parent + one child eliminated).
    pub matches: usize,
    /// Complement matches made (parent kept, one recursion).
    pub complement_matches: usize,
    /// No-new-vars applications (care variable quantified out).
    pub no_new_vars_steps: usize,
    /// Nodes where no match applied and both branches were recursed.
    pub splits: usize,
}

/// Runs the generic top-down sibling matcher and returns a cover of
/// `[f, c]` (paper Figure 2).
///
/// # Panics
///
/// Panics if `isf.c` is the zero function (empty care set).
///
/// # Example
///
/// ```
/// use bddmin_bdd::Bdd;
/// use bddmin_core::{generic_td, Isf, MatchCriterion, SiblingConfig};
///
/// let mut bdd = Bdd::new(2);
/// let (f, c) = bdd.from_leaf_spec("d1 01").unwrap();
/// let cfg = SiblingConfig::new(MatchCriterion::Osm);
/// let g = generic_td(&mut bdd, Isf::new(f, c), cfg);
/// assert!(Isf::new(f, c).is_cover(&mut bdd, g));
/// ```
pub fn generic_td(bdd: &mut Bdd, isf: Isf, config: SiblingConfig) -> Edge {
    generic_td_budgeted(bdd, isf, config).expect(BUDGET_PANIC)
}

/// Checked [`generic_td`]: returns [`BudgetExceeded`](bddmin_bdd::BudgetExceeded)
/// instead of running past an armed budget. On error the traversal's
/// partial work is discarded (the memo keeps only completed sub-results,
/// which remain correct).
///
/// # Panics
///
/// Panics if `isf.c` is the zero function (empty care set).
pub fn generic_td_budgeted(
    bdd: &mut Bdd,
    isf: Isf,
    config: SiblingConfig,
) -> Result<Edge, BudgetExceeded> {
    assert!(!isf.c.is_zero(), "generic_td: care set must be non-empty");
    // Sibling results are pure in (f, c, config): salt 0 shares the
    // manager-resident memo across invocations, so repeated calls on
    // overlapping instances cost nothing until the next cache flush.
    let tag = sibling_tag(config, 0);
    let mut stats = SiblingStats::default();
    td_rec(bdd, isf, config, tag, &mut stats, 0)
}

/// Like [`generic_td`], additionally returning traversal statistics.
///
/// The traversal runs in a private memo key space (a fresh salt), so the
/// counters always describe one full traversal of the instance rather
/// than whatever a previous invocation happened to leave memoised.
///
/// # Panics
///
/// Panics if `isf.c` is the zero function (empty care set).
pub fn generic_td_stats(bdd: &mut Bdd, isf: Isf, config: SiblingConfig) -> (Edge, SiblingStats) {
    assert!(!isf.c.is_zero(), "generic_td: care set must be non-empty");
    let tag = sibling_tag(config, bdd.memo_salt());
    let mut stats = SiblingStats::default();
    let g = td_rec(bdd, isf, config, tag, &mut stats, 0).expect(BUDGET_PANIC);
    (g, stats)
}

fn td_rec(
    bdd: &mut Bdd,
    isf: Isf,
    config: SiblingConfig,
    tag: u64,
    stats: &mut SiblingStats,
    depth: u32,
) -> Result<Edge, BudgetExceeded> {
    let Isf { f, c } = isf;
    debug_assert!(!c.is_zero());
    if depth > MAX_REC_DEPTH {
        return Err(BudgetExceeded::DEPTH);
    }
    if c.is_one() || f.is_constant() {
        return Ok(f);
    }
    if let Some((r, _)) = bdd.memo_get(tag, f, c) {
        return Ok(r);
    }
    stats.visited += 1;
    let f_level = bdd.level(f);
    let c_level = bdd.level(c);
    let top = f_level.min(c_level);
    let (f_t, f_e) = bdd.cof_at(f, top);
    let (c_t, c_e) = bdd.cof_at(c, top);
    let then_isf = Isf::new(f_t, c_t);
    let else_isf = Isf::new(f_e, c_e);

    let ret = if config.no_new_vars && c_level < f_level {
        // f is independent of the top care variable: keep it that way by
        // quantifying the variable out of the care function.
        stats.no_new_vars_steps += 1;
        let c_next = bdd.try_or(c_t, c_e)?;
        td_rec(bdd, Isf::new(f, c_next), config, tag, stats, depth + 1)?
    } else if let Some(m) = try_match_budgeted(bdd, config.criterion, then_isf, else_isf)? {
        // Parent and one child eliminated.
        stats.matches += 1;
        td_rec(bdd, m, config, tag, stats, depth + 1)?
    } else if config.match_complement {
        if let Some(m) =
            try_match_budgeted(bdd, config.criterion, then_isf, else_isf.complement())?
        {
            // Parent kept, but only one recursion: then-branch is covered by
            // the i-cover's cover, else-branch by its complement.
            stats.complement_matches += 1;
            let temp = td_rec(bdd, m, config, tag, stats, depth + 1)?;
            let top_var = bdd.try_var_at_level(top)?;
            bdd.try_ite(top_var, temp, temp.complement())?
        } else {
            td_split(bdd, top, then_isf, else_isf, config, tag, stats, depth)?
        }
    } else {
        td_split(bdd, top, then_isf, else_isf, config, tag, stats, depth)?
    };
    bdd.memo_insert(tag, f, c, (ret, ret));
    Ok(ret)
}

#[allow(clippy::too_many_arguments)]
fn td_split(
    bdd: &mut Bdd,
    top: bddmin_bdd::Var,
    then_isf: Isf,
    else_isf: Isf,
    config: SiblingConfig,
    tag: u64,
    stats: &mut SiblingStats,
    depth: u32,
) -> Result<Edge, BudgetExceeded> {
    // No match was possible, so neither branch care is zero (a zero care on
    // either side always matches, for every criterion).
    debug_assert!(!then_isf.c.is_zero() && !else_isf.c.is_zero());
    stats.splits += 1;
    let t = td_rec(bdd, then_isf, config, tag, stats, depth + 1)?;
    let e = td_rec(bdd, else_isf, config, tag, stats, depth + 1)?;
    let top_var = bdd.try_var_at_level(top)?;
    bdd.try_ite(top_var, t, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddmin_bdd::Var;

    fn all_configs() -> Vec<SiblingConfig> {
        let mut v = Vec::new();
        for crit in MatchCriterion::ALL {
            for compl in [false, true] {
                for nnv in [false, true] {
                    v.push(SiblingConfig {
                        criterion: crit,
                        match_complement: compl,
                        no_new_vars: nnv,
                    });
                }
            }
        }
        v
    }

    #[test]
    fn every_config_produces_a_cover_on_paper_instances() {
        for spec in ["d1 01", "d1 01 1d 01", "1d d1 d0 0d", "01 0d 01 d1"] {
            for cfg in all_configs() {
                let mut bdd = Bdd::new(4);
                let (f, c) = bdd.from_leaf_spec(spec).unwrap();
                let isf = Isf::new(f, c);
                let g = generic_td(&mut bdd, isf, cfg);
                assert!(
                    isf.is_cover(&mut bdd, g),
                    "config {cfg:?} broke cover on {spec}"
                );
            }
        }
    }

    #[test]
    fn osdm_config_equals_classic_constrain() {
        // Paper Table 2 row 1: the framework instance with osdm and no
        // flags IS the constrain operator.
        let mut bdd = Bdd::new(4);
        let specs = ["d1 01", "d1 01 1d 01", "1d d1 d0 0d", "d1 11 0d 00"];
        for spec in specs {
            let (f, c) = bdd.from_leaf_spec(spec).unwrap();
            if c.is_zero() {
                continue;
            }
            let via_framework = generic_td(
                &mut bdd,
                Isf::new(f, c),
                SiblingConfig::new(MatchCriterion::Osdm),
            );
            let classic = bdd.constrain(f, c);
            assert_eq!(via_framework, classic, "mismatch on {spec}");
        }
    }

    #[test]
    fn osdm_nnv_config_equals_classic_restrict() {
        // Paper Table 2 row 2: osdm + no-new-vars IS the restrict operator.
        let mut bdd = Bdd::new(4);
        let specs = ["d1 01", "d1 01 1d 01", "1d d1 d0 0d", "dd 01 11 d0"];
        for spec in specs {
            let (f, c) = bdd.from_leaf_spec(spec).unwrap();
            if c.is_zero() {
                continue;
            }
            let via_framework = generic_td(
                &mut bdd,
                Isf::new(f, c),
                SiblingConfig::new(MatchCriterion::Osdm).no_new_vars(true),
            );
            let classic = bdd.restrict(f, c);
            assert_eq!(via_framework, classic, "mismatch on {spec}");
        }
    }

    #[test]
    fn table2_collapses_to_eight() {
        // Rows 3,4 equal rows 1,2 (complement matching has no effect on
        // osdm) and rows 10,12 equal rows 9,11 (no-new-vars has no effect
        // on tsm) — verified behaviourally on a batch of instances.
        let specs = [
            "d1 01", "d1 01 1d 01", "1d d1 d0 0d", "01 0d 01 d1",
            "dd 01 11 d0", "10 d1 0d 11", "0d d1 10 01 11 d0 d1 00",
        ];
        for spec in specs {
            let mut bdd = Bdd::new(4);
            let (f, c) = bdd.from_leaf_spec(spec).unwrap();
            if c.is_zero() {
                continue;
            }
            let isf = Isf::new(f, c);
            for nnv in [false, true] {
                let plain = generic_td(
                    &mut bdd,
                    isf,
                    SiblingConfig::new(MatchCriterion::Osdm).no_new_vars(nnv),
                );
                let with_compl = generic_td(
                    &mut bdd,
                    isf,
                    SiblingConfig::new(MatchCriterion::Osdm)
                        .no_new_vars(nnv)
                        .match_complement(true),
                );
                assert_eq!(plain, with_compl, "osdm compl flag changed {spec}");
            }
            for compl in [false, true] {
                let plain = generic_td(
                    &mut bdd,
                    isf,
                    SiblingConfig::new(MatchCriterion::Tsm).match_complement(compl),
                );
                let with_nnv = generic_td(
                    &mut bdd,
                    isf,
                    SiblingConfig::new(MatchCriterion::Tsm)
                        .match_complement(compl)
                        .no_new_vars(true),
                );
                assert_eq!(plain, with_nnv, "tsm nnv flag changed {spec}");
            }
        }
    }

    #[test]
    fn paper_counterexample_1_constrain() {
        // §3.2 example 1: instance (d1 01); constrain yields (11 01),
        // minimum is (01 01) — i.e. constrain returns 3 nodes (incl. const)
        // where 2 suffice.
        let mut bdd = Bdd::new(2);
        let (f, c) = bdd.from_leaf_spec("d1 01").unwrap();
        let g = bdd.constrain(f, c);
        let expected = bdd.from_leaf_spec("11 01").unwrap().0;
        assert_eq!(g, expected);
        // The minimum cover is x2 (the function (01 01)).
        let x2 = bdd.var(Var(1));
        assert!(Isf::new(f, c).is_cover(&mut bdd, x2));
        assert!(bdd.size(x2) < bdd.size(g));
        // osm_td and tsm_td do find a minimum here (the paper's point).
        for crit in [MatchCriterion::Osm, MatchCriterion::Tsm] {
            let h = generic_td(&mut bdd, Isf::new(f, c), SiblingConfig::new(crit));
            assert_eq!(bdd.size(h), bdd.size(x2), "{crit} should be optimal");
        }
    }

    #[test]
    fn paper_counterexample_2_osm_td() {
        // §3.2 example 2: instance (d1 01 1d 01); osm_td yields
        // (01 01 11 01), while (11 01 11 01) is minimum.
        let mut bdd = Bdd::new(3);
        let (f, c) = bdd.from_leaf_spec("d1 01 1d 01").unwrap();
        let isf = Isf::new(f, c);
        let osm_result = generic_td(&mut bdd, isf, SiblingConfig::new(MatchCriterion::Osm));
        let minimum = bdd.from_leaf_spec("11 01 11 01").unwrap().0;
        assert!(isf.is_cover(&mut bdd, minimum));
        assert!(
            bdd.size(osm_result) > bdd.size(minimum),
            "osm_td is suboptimal here: {} vs {}",
            bdd.size(osm_result),
            bdd.size(minimum)
        );
        // constrain and tsm_td find a minimum on this instance.
        let g_con = bdd.constrain(f, c);
        assert_eq!(bdd.size(g_con), bdd.size(minimum));
        let g_tsm = generic_td(&mut bdd, isf, SiblingConfig::new(MatchCriterion::Tsm));
        assert_eq!(bdd.size(g_tsm), bdd.size(minimum));
    }

    #[test]
    fn paper_counterexample_3_tsm_td() {
        // §3.2 example 3: instance (1d d1 d0 0d); tsm_td yields
        // (10 01 10 01), minimum is (11 11 00 00) = ¬x1? sizes differ.
        let mut bdd = Bdd::new(3);
        let (f, c) = bdd.from_leaf_spec("1d d1 d0 0d").unwrap();
        let isf = Isf::new(f, c);
        let tsm_result = generic_td(&mut bdd, isf, SiblingConfig::new(MatchCriterion::Tsm));
        let minimum = bdd.from_leaf_spec("11 11 00 00").unwrap().0;
        assert!(isf.is_cover(&mut bdd, minimum));
        assert!(
            bdd.size(tsm_result) > bdd.size(minimum),
            "tsm_td is suboptimal here: {} vs {}",
            bdd.size(tsm_result),
            bdd.size(minimum)
        );
        // constrain and osm_td find a minimum on this instance.
        let g_con = bdd.constrain(f, c);
        assert_eq!(bdd.size(g_con), bdd.size(minimum));
        let g_osm = generic_td(&mut bdd, isf, SiblingConfig::new(MatchCriterion::Osm));
        assert_eq!(bdd.size(g_osm), bdd.size(minimum));
    }

    #[test]
    fn trivial_care_cases() {
        // 0 ≠ c ≤ f ⟹ every heuristic returns 1; c ≤ ¬f ⟹ 0 (paper §3.1).
        let mut bdd = Bdd::new(2);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let f = bdd.or(a, b);
        let care_inside_f = bdd.and(a, b);
        let nf = bdd.not(f);
        for cfg in all_configs() {
            let g = generic_td(&mut bdd, Isf::new(f, care_inside_f), cfg);
            assert!(g.is_one(), "{cfg:?} should return 1");
            let g0 = generic_td(&mut bdd, Isf::new(f, nf), cfg);
            assert!(g0.is_zero(), "{cfg:?} should return 0");
        }
    }

    #[test]
    fn full_care_is_identity() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let f = bdd.xor(a, b);
        for cfg in all_configs() {
            assert_eq!(generic_td(&mut bdd, Isf::total(f), cfg), f);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_care_panics() {
        let mut bdd = Bdd::new(1);
        let a = bdd.var(Var(0));
        generic_td(
            &mut bdd,
            Isf::new(a, Edge::ZERO),
            SiblingConfig::new(MatchCriterion::Osm),
        );
    }

    #[test]
    fn no_new_vars_avoids_foreign_support() {
        // f over {x2,x3}, c over {x1,x2,x3}: nnv configurations never
        // introduce x1 into the result.
        let mut bdd = Bdd::new(3);
        let x1 = bdd.var(Var(0));
        let x2 = bdd.var(Var(1));
        let x3 = bdd.var(Var(2));
        let f = bdd.xor(x2, x3);
        let x23 = bdd.and(x2, x3);
        let c = bdd.or(x1, x23);
        for crit in [MatchCriterion::Osdm, MatchCriterion::Osm] {
            let g = generic_td(
                &mut bdd,
                Isf::new(f, c),
                SiblingConfig::new(crit).no_new_vars(true),
            );
            assert!(!bdd.depends_on(g, Var(0)), "{crit} nnv introduced x1");
        }
        let _ = x1;
    }

    #[test]
    fn complement_match_helps_on_symmetric_instance() {
        // Build an instance where then/else siblings are complements on
        // their care sets, so only complement matching can fuse them.
        let mut bdd = Bdd::new(3);
        // f = x1 ? g : ¬g with g = x2^x3; full care.
        let x2 = bdd.var(Var(1));
        let x3 = bdd.var(Var(2));
        let g = bdd.xor(x2, x3);
        let x1 = bdd.var(Var(0));
        let f = bdd.ite(x1, g, bdd.not(g));
        // Punch a small DC hole so sibling matching has freedom.
        let hole = bdd.and(x2, x3);
        let c = bdd.not(hole);
        let isf = Isf::new(f, c);
        let plain = generic_td(&mut bdd, isf, SiblingConfig::new(MatchCriterion::Osm));
        let compl = generic_td(
            &mut bdd,
            isf,
            SiblingConfig::new(MatchCriterion::Osm).match_complement(true),
        );
        assert!(isf.is_cover(&mut bdd, plain));
        assert!(isf.is_cover(&mut bdd, compl));
        assert!(bdd.size(compl) <= bdd.size(plain));
    }

    #[test]
    fn never_introduces_variable_outside_both_supports() {
        // Paper §3.2: "It is never beneficial to introduce a variable that
        // is in neither the support of f nor c. All our algorithms
        // guarantee that this never happens."
        let mut bdd = Bdd::new(4);
        let x2 = bdd.var(Var(1));
        let x4 = bdd.var(Var(3));
        let f = bdd.xor(x2, x4);
        let c = bdd.or(x2, x4);
        for cfg in all_configs() {
            let g = generic_td(&mut bdd, Isf::new(f, c), cfg);
            assert!(!bdd.depends_on(g, Var(0)), "{cfg:?} introduced x1");
            assert!(!bdd.depends_on(g, Var(2)), "{cfg:?} introduced x3");
        }
    }

    #[test]
    fn stats_reflect_structure() {
        let mut bdd = Bdd::new(3);
        // Cube care: every care-split node matches (Theorem 7's machinery) —
        // constrain never splits into two cared-for branches when c is a
        // cube below the current level... at minimum, match+split counts add
        // up to the visited nodes.
        let (f, c) = bdd.from_leaf_spec("d1 01 1d 01").unwrap();
        let isf = Isf::new(f, c);
        for cfg in [
            SiblingConfig::new(MatchCriterion::Osdm),
            SiblingConfig::new(MatchCriterion::Osm)
                .match_complement(true)
                .no_new_vars(true),
            SiblingConfig::new(MatchCriterion::Tsm),
        ] {
            let (g, stats) = generic_td_stats(&mut bdd, isf, cfg);
            assert!(isf.is_cover(&mut bdd, g));
            assert_eq!(
                stats.visited,
                stats.matches
                    + stats.complement_matches
                    + stats.no_new_vars_steps
                    + stats.splits,
                "every visited node takes exactly one action: {stats:?}"
            );
            assert!(stats.visited >= 1);
        }
        // tsm on this instance matches at the root: a single visit.
        let (_, tsm_stats) =
            generic_td_stats(&mut bdd, isf, SiblingConfig::new(MatchCriterion::Tsm));
        assert!(tsm_stats.matches >= 1);
    }

    #[test]
    fn nnv_steps_counted() {
        // f independent of the top care variable: restrict must take the
        // no-new-vars path at least once.
        let mut bdd = Bdd::new(3);
        let x2 = bdd.var(Var(1));
        let x3 = bdd.var(Var(2));
        let f = bdd.xor(x2, x3);
        let x1 = bdd.var(Var(0));
        let x23 = bdd.and(x2, x3);
        let c = bdd.or(x1, x23);
        let isf = Isf::new(f, c);
        let (_, stats) = generic_td_stats(
            &mut bdd,
            isf,
            SiblingConfig::new(MatchCriterion::Osdm).no_new_vars(true),
        );
        assert!(stats.no_new_vars_steps >= 1, "{stats:?}");
        // Without nnv the same instance takes no such step.
        let (_, plain) =
            generic_td_stats(&mut bdd, isf, SiblingConfig::new(MatchCriterion::Osdm));
        assert_eq!(plain.no_new_vars_steps, 0);
    }

    #[test]
    fn paper_names() {
        assert_eq!(
            SiblingConfig::new(MatchCriterion::Osdm).paper_name(),
            "constrain"
        );
        assert_eq!(
            SiblingConfig::new(MatchCriterion::Osdm)
                .no_new_vars(true)
                .paper_name(),
            "restrict"
        );
        assert_eq!(
            SiblingConfig::new(MatchCriterion::Osm)
                .match_complement(true)
                .no_new_vars(true)
                .paper_name(),
            "osm_bt"
        );
        assert_eq!(
            SiblingConfig::new(MatchCriterion::Tsm)
                .no_new_vars(true)
                .paper_name(),
            "tsm_td"
        );
    }
}
