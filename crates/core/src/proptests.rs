//! Property-based tests for the minimization framework.
//!
//! Random incompletely specified functions over 4 variables are generated
//! as truth-table pairs; every heuristic must return a cover, and the
//! structural theorems of the paper are exercised on the random stream.

use proptest::prelude::*;

use bddmin_bdd::{Bdd, Cube, Edge, Var};

use crate::heuristics::Heuristic;
use crate::isf::Isf;
use crate::level::{minimize_at_level, opt_lv, CliqueOptions};
use crate::lower_bound::lower_bound;
use crate::matching::{matches_directed, try_match, MatchCriterion};
use crate::schedule::Schedule;
use crate::sibling::{generic_td, SiblingConfig};
use crate::windowed::{windowed_sibling_pass, LevelWindow};

const NVARS: usize = 4;
const TABLE: usize = 1 << NVARS;

fn from_table(bdd: &mut Bdd, table: u16) -> Edge {
    let mut f = Edge::ZERO;
    for row in 0..TABLE {
        if table >> row & 1 == 1 {
            let lits: Vec<(Var, bool)> = (0..NVARS)
                .map(|v| (Var(v as u32), row >> (NVARS - 1 - v) & 1 == 1))
                .collect();
            let cube = Cube::new(lits).to_edge(bdd);
            f = bdd.or(f, cube);
        }
    }
    f
}

/// Builds a 3-variable function from a truth table (for exhaustive checks).
fn from_table3(bdd: &mut Bdd, table: u8) -> Edge {
    let mut f = Edge::ZERO;
    for row in 0..8 {
        if table >> row & 1 == 1 {
            let lits: Vec<(Var, bool)> = (0..3)
                .map(|v| (Var(v as u32), row >> (2 - v) & 1 == 1))
                .collect();
            let cube = Cube::new(lits).to_edge(bdd);
            f = bdd.or(f, cube);
        }
    }
    f
}

/// Strategy producing a random instance with non-empty care set.
fn instance() -> impl Strategy<Value = (u16, u16)> {
    (any::<u16>(), 1u16..)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_heuristic_returns_a_cover((tf, tc) in instance()) {
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, tf);
        let c = from_table(&mut bdd, tc);
        prop_assume!(!c.is_zero());
        let isf = Isf::new(f, c);
        for h in Heuristic::ALL.into_iter().chain([Heuristic::Scheduled]) {
            let g = h.minimize(&mut bdd, isf);
            prop_assert!(isf.is_cover(&mut bdd, g), "{h} returned a non-cover");
        }
    }

    #[test]
    fn checked_never_exceeds_f((tf, tc) in instance()) {
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, tf);
        let c = from_table(&mut bdd, tc);
        prop_assume!(!c.is_zero());
        let isf = Isf::new(f, c);
        let f_size = bdd.size(f);
        for h in Heuristic::ALL {
            let out = h.minimize_checked(&mut bdd, isf);
            prop_assert!(out.size <= f_size);
            prop_assert!(isf.is_cover(&mut bdd, out.cover));
        }
    }

    #[test]
    fn framework_matches_classic_operators((tf, tc) in instance()) {
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, tf);
        let c = from_table(&mut bdd, tc);
        prop_assume!(!c.is_zero());
        let isf = Isf::new(f, c);
        let con_fw = generic_td(&mut bdd, isf, SiblingConfig::new(MatchCriterion::Osdm));
        let con_classic = bdd.constrain(f, c);
        prop_assert_eq!(con_fw, con_classic);
        let res_fw = generic_td(
            &mut bdd,
            isf,
            SiblingConfig::new(MatchCriterion::Osdm).no_new_vars(true),
        );
        let res_classic = bdd.restrict(f, c);
        prop_assert_eq!(res_fw, res_classic);
    }

    #[test]
    fn theorem7_cube_care_is_optimal(tf: u8, lits in proptest::collection::vec((0u32..3u32, any::<bool>()), 0..3)) {
        // 3-variable instances so the exhaustive optimum (256 candidate
        // covers) stays cheap.
        let mut bdd = Bdd::new(3);
        let f = from_table3(&mut bdd, tf);
        // Deduplicate literals to form a consistent cube.
        let mut seen = std::collections::HashMap::new();
        for (v, pol) in lits {
            seen.entry(v).or_insert(pol);
        }
        let cube_lits: Vec<(Var, bool)> =
            seen.into_iter().map(|(v, p)| (Var(v), p)).collect();
        let cube = Cube::new(cube_lits).to_edge(&mut bdd);
        let isf = Isf::new(f, cube);
        // Exhaustive optimum.
        let mut best = usize::MAX;
        for table in 0u32..256 {
            let g = from_table3(&mut bdd, table as u8);
            if isf.is_cover(&mut bdd, g) {
                best = best.min(bdd.size(g));
            }
        }
        for h in Heuristic::SIBLING {
            let g = h.minimize(&mut bdd, isf);
            prop_assert_eq!(bdd.size(g), best, "{} not optimal on cube care", h);
        }
    }

    #[test]
    fn lower_bound_is_sound((tf, tc) in instance()) {
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, tf);
        let c = from_table(&mut bdd, tc);
        prop_assume!(!c.is_zero());
        let isf = Isf::new(f, c);
        let lb = lower_bound(&mut bdd, isf, 1000);
        // Exhaustive optimum over all 2^16 covers would be slow; check
        // against every heuristic instead (each is an upper bound).
        for h in [Heuristic::Constrain, Heuristic::Restrict, Heuristic::OsmBt,
                  Heuristic::TsmTd, Heuristic::OptLv] {
            let g = h.minimize(&mut bdd, isf);
            prop_assert!(lb.bound <= bdd.size(g));
        }
    }

    #[test]
    fn matching_hierarchy_on_random_isfs(t1: u16, c1: u16, t2: u16, c2: u16) {
        let mut bdd = Bdd::new(NVARS);
        let a = Isf::new(from_table(&mut bdd, t1), from_table(&mut bdd, c1));
        let b = Isf::new(from_table(&mut bdd, t2), from_table(&mut bdd, c2));
        let osdm = matches_directed(&mut bdd, MatchCriterion::Osdm, a, b);
        let osm = matches_directed(&mut bdd, MatchCriterion::Osm, a, b);
        let tsm = matches_directed(&mut bdd, MatchCriterion::Tsm, a, b);
        prop_assert!(!osdm || osm);
        prop_assert!(!osm || tsm);
        // Any produced i-cover i-covers both inputs.
        for crit in MatchCriterion::ALL {
            if let Some(m) = try_match(&mut bdd, crit, a, b) {
                prop_assert!(m.i_covers(&mut bdd, a), "{} icover of a", crit);
                prop_assert!(m.i_covers(&mut bdd, b), "{} icover of b", crit);
            }
        }
    }

    #[test]
    fn level_pass_produces_icover((tf, tc) in instance(), lvl in 0u32..NVARS as u32) {
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, tf);
        let c = from_table(&mut bdd, tc);
        let isf = Isf::new(f, c);
        for crit in [MatchCriterion::Osm, MatchCriterion::Tsm] {
            let out = minimize_at_level(
                &mut bdd, isf, Var(lvl), crit, CliqueOptions::default(), None);
            prop_assert!(out.i_covers(&mut bdd, isf), "{} level pass", crit);
            prop_assert!(bdd.implies_holds(isf.c, out.c), "care must not shrink");
        }
    }

    #[test]
    fn windowed_pass_produces_icover((tf, tc) in instance(), top in 0u32..NVARS as u32, len in 1u32..NVARS as u32) {
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, tf);
        let c = from_table(&mut bdd, tc);
        let isf = Isf::new(f, c);
        let bottom = (top + len).min(NVARS as u32);
        let window = LevelWindow::new(Var(top), Var(bottom));
        for crit in MatchCriterion::ALL {
            for compl in [false, true] {
                let cfg = SiblingConfig::new(crit).match_complement(compl);
                let out = windowed_sibling_pass(&mut bdd, isf, cfg, window);
                prop_assert!(out.i_covers(&mut bdd, isf));
            }
        }
    }

    #[test]
    fn schedule_window_sweep_is_sound((tf, tc) in instance(), w in 1u32..5, stop in 0u32..3) {
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, tf);
        let c = from_table(&mut bdd, tc);
        prop_assume!(!c.is_zero());
        let isf = Isf::new(f, c);
        let g = Schedule::new(w, stop).apply(&mut bdd, isf);
        prop_assert!(isf.is_cover(&mut bdd, g));
        let g2 = Schedule::new(w, stop).level_passes(false).apply(&mut bdd, isf);
        prop_assert!(isf.is_cover(&mut bdd, g2));
    }

    #[test]
    fn opt_lv_sound_and_deterministic((tf, tc) in instance()) {
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, tf);
        let c = from_table(&mut bdd, tc);
        prop_assume!(!c.is_zero());
        let isf = Isf::new(f, c);
        let g1 = opt_lv(&mut bdd, isf, CliqueOptions::default());
        let g2 = opt_lv(&mut bdd, isf, CliqueOptions::default());
        prop_assert_eq!(g1, g2);
        prop_assert!(isf.is_cover(&mut bdd, g1));
    }

    #[test]
    fn trivial_care_shortcuts((tf, tc) in instance()) {
        // 0 ≠ c ≤ f ⟹ result 1; c ≤ ¬f ⟹ result 0 (paper §3.1).
        let mut bdd = Bdd::new(NVARS);
        let f = from_table(&mut bdd, tf);
        let c0 = from_table(&mut bdd, tc);
        let c_in_f = bdd.and(c0, f);
        prop_assume!(!c_in_f.is_zero());
        for h in Heuristic::SIBLING {
            let g = h.minimize(&mut bdd, Isf::new(f, c_in_f));
            prop_assert!(g.is_one(), "{} on c ≤ f", h);
            let nf = bdd.not(f);
            let c_in_nf = bdd.and(c0, nf);
            if !c_in_nf.is_zero() {
                let g0 = h.minimize(&mut bdd, Isf::new(f, c_in_nf));
                prop_assert!(g0.is_zero(), "{} on c ≤ ¬f", h);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn exact_is_a_true_lower_envelope(tf: u8, tc in 1u8..) {
        // 3-variable instances with bounded DC counts so the exact
        // enumeration stays small.
        let mut bdd = Bdd::new(3);
        let f = from_table3(&mut bdd, tf);
        let c = from_table3(&mut bdd, tc);
        prop_assume!(!c.is_zero());
        let isf = Isf::new(f, c);
        let exact = crate::exact::exact_minimum(
            &mut bdd,
            isf,
            crate::exact::ExactConfig {
                max_support_vars: 3,
                max_dc_minterms: 8,
            },
        )
        .expect("3-var instance fits the limits");
        prop_assert!(isf.is_cover(&mut bdd, exact.cover));
        let lb = lower_bound(&mut bdd, isf, 1000);
        prop_assert!(lb.bound <= exact.size);
        for h in Heuristic::ALL.into_iter().chain([Heuristic::Scheduled]) {
            if matches!(h, Heuristic::FAndC | Heuristic::FOrNc) {
                continue;
            }
            let g = h.minimize(&mut bdd, isf);
            prop_assert!(
                exact.size <= bdd.size(g),
                "{} beat the exact optimum", h
            );
        }
    }
}
