//! Matching criteria (paper Section 3.1.1).
//!
//! Two incompletely specified functions *match* when they have a common
//! i-cover; the criteria differ in how much don't-care freedom may be spent
//! to establish the match:
//!
//! | criterion | reflexive | symmetric | transitive | condition |
//! |-----------|-----------|-----------|------------|-----------|
//! | `osdm`    | no        | no        | yes        | `c1 = 0` |
//! | `osm`     | yes       | no        | yes        | `f1 ⊕ f2 ≤ ¬c1` and `¬c2 ⊆ ¬c1` |
//! | `tsm`     | yes       | yes       | no         | `f1 ⊕ f2 ≤ ¬c1 + ¬c2` |
//!
//! (paper Table 1). An `osdm` match implies an `osm` match, which implies a
//! `tsm` match. When a match is made the produced i-cover keeps the maximal
//! don't-care part:
//!
//! * `osdm`, `osm` → `[f2, c2]` (the second function, unchanged),
//! * `tsm` → `[f1·c1 + f2·c2, c1 + c2]`.

use bddmin_bdd::{Bdd, BudgetExceeded, Edge};

use crate::isf::Isf;
use crate::memo_tags::tsm_pair_tag;
use crate::BUDGET_PANIC;

/// One of the paper's three matching criteria.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MatchCriterion {
    /// One-sided don't-care match: the first function is all don't care.
    Osdm,
    /// One-sided match: assign DCs of the first function only.
    Osm,
    /// Two-sided match: assign DCs of both functions.
    Tsm,
}

impl MatchCriterion {
    /// All criteria, in increasing strength.
    pub const ALL: [MatchCriterion; 3] =
        [MatchCriterion::Osdm, MatchCriterion::Osm, MatchCriterion::Tsm];

    /// Short lowercase name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            MatchCriterion::Osdm => "osdm",
            MatchCriterion::Osm => "osm",
            MatchCriterion::Tsm => "tsm",
        }
    }
}

impl std::fmt::Display for MatchCriterion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Directional test: does `a` match `b` under `criterion` (spending only the
/// freedoms the criterion allows)?
///
/// Note `osdm` and `osm` are directional; [`try_match`] tries both
/// directions.
pub fn matches_directed(bdd: &mut Bdd, criterion: MatchCriterion, a: Isf, b: Isf) -> bool {
    matches_directed_budgeted(bdd, criterion, a, b).expect(BUDGET_PANIC)
}

/// Checked [`matches_directed`]: returns [`BudgetExceeded`] instead of
/// running past an armed budget.
pub(crate) fn matches_directed_budgeted(
    bdd: &mut Bdd,
    criterion: MatchCriterion,
    a: Isf,
    b: Isf,
) -> Result<bool, BudgetExceeded> {
    match criterion {
        MatchCriterion::Osdm => Ok(a.c.is_zero()),
        MatchCriterion::Osm => {
            // f1 ⊕ f2 ≤ ¬c1  and  c1 ≤ c2.
            if !bdd.try_implies_holds(a.c, b.c)? {
                return Ok(false);
            }
            let diff = bdd.try_xor(a.f, b.f)?;
            Ok(bdd.try_and(diff, a.c)?.is_zero())
        }
        MatchCriterion::Tsm => {
            // f1 ⊕ f2 ≤ ¬c1 + ¬c2  ⟺  (f1 ⊕ f2)·c1·c2 = 0.
            let diff = bdd.try_xor(a.f, b.f)?;
            let dc = bdd.try_and(a.c, b.c)?;
            Ok(bdd.try_and(diff, dc)?.is_zero())
        }
    }
}

/// [`matches_directed`] for tsm, memoized in the manager-owned memo.
///
/// tsm is symmetric, so the pair is order-canonicalized on the raw edge
/// bits before the lookup — `(a, b)` and `(b, a)` share one entry — and
/// the tag is unsalted, so windowed/scheduled passes that regather
/// overlapping levels re-use verdicts instead of re-proving pairs. The
/// verdict is pure in the four canonical edges, which is what makes the
/// shared key space sound; GC scrubbing drops entries whose edges die.
pub(crate) fn matches_tsm_pair_memoized(
    bdd: &mut Bdd,
    a: Isf,
    b: Isf,
) -> Result<bool, BudgetExceeded> {
    let (x, y) = if (a.f.to_bits(), a.c.to_bits()) <= (b.f.to_bits(), b.c.to_bits()) {
        (a, b)
    } else {
        (b, a)
    };
    let tag = tsm_pair_tag();
    if let Some(verdict) = bdd.memo_get_pred(tag, x.f, x.c, y.f, y.c) {
        return Ok(verdict);
    }
    let verdict = matches_directed_budgeted(bdd, MatchCriterion::Tsm, x, y)?;
    bdd.memo_insert_pred(tag, x.f, x.c, y.f, y.c, verdict);
    Ok(verdict)
}

/// Attempts to match `a` and `b`; on success returns the common i-cover
/// with maximal don't-care part (paper §3.1.1).
///
/// For the directional criteria (`osdm`, `osm`) both directions are tried,
/// mirroring the paper's `is_match`.
pub fn try_match(bdd: &mut Bdd, criterion: MatchCriterion, a: Isf, b: Isf) -> Option<Isf> {
    try_match_budgeted(bdd, criterion, a, b).expect(BUDGET_PANIC)
}

/// Checked [`try_match`]: returns [`BudgetExceeded`] instead of running
/// past an armed budget.
pub(crate) fn try_match_budgeted(
    bdd: &mut Bdd,
    criterion: MatchCriterion,
    a: Isf,
    b: Isf,
) -> Result<Option<Isf>, BudgetExceeded> {
    match criterion {
        MatchCriterion::Osdm | MatchCriterion::Osm => {
            if matches_directed_budgeted(bdd, criterion, a, b)? {
                Ok(Some(b))
            } else if matches_directed_budgeted(bdd, criterion, b, a)? {
                Ok(Some(a))
            } else {
                Ok(None)
            }
        }
        MatchCriterion::Tsm => {
            if matches_directed_budgeted(bdd, criterion, a, b)? {
                Ok(Some(merge_tsm_budgeted(bdd, a, b)?))
            } else {
                Ok(None)
            }
        }
    }
}

/// The tsm i-cover `[f1·c1 + f2·c2, c1 + c2]` of two tsm-matching ISFs.
///
/// When the two representatives coincide (`f1 == f2`) the representative is
/// kept as-is, `[f1, c1 + c2]` — the same ISF, but it makes the framework
/// instance with tsm literally insensitive to the no-new-vars flag (paper
/// Table 2: rows 10 and 12 equal rows 9 and 11).
pub fn merge_tsm(bdd: &mut Bdd, a: Isf, b: Isf) -> Isf {
    merge_tsm_budgeted(bdd, a, b).expect(BUDGET_PANIC)
}

/// Checked [`merge_tsm`].
pub(crate) fn merge_tsm_budgeted(bdd: &mut Bdd, a: Isf, b: Isf) -> Result<Isf, BudgetExceeded> {
    let c = bdd.try_or(a.c, b.c)?;
    if a.f == b.f {
        return Ok(Isf { f: a.f, c });
    }
    let on_a = a.try_onset(bdd)?;
    let on_b = b.try_onset(bdd)?;
    Ok(Isf {
        f: bdd.try_or(on_a, on_b)?,
        c,
    })
}

/// Merges a whole set of pairwise tsm-matching ISFs into their common
/// i-cover `[Σ fj·cj, Σ cj]` (paper Lemma 14 guarantees a common cover
/// exists exactly when they match pairwise).
pub fn merge_tsm_many(bdd: &mut Bdd, isfs: &[Isf]) -> Isf {
    merge_tsm_many_budgeted(bdd, isfs).expect(BUDGET_PANIC)
}

/// Checked [`merge_tsm_many`].
pub(crate) fn merge_tsm_many_budgeted(
    bdd: &mut Bdd,
    isfs: &[Isf],
) -> Result<Isf, BudgetExceeded> {
    let mut f = Edge::ZERO;
    let mut c = Edge::ZERO;
    for isf in isfs {
        let on = isf.try_onset(bdd)?;
        f = bdd.try_or(f, on)?;
        c = bdd.try_or(c, isf.c)?;
    }
    Ok(Isf { f, c })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddmin_bdd::Var;

    fn setup() -> (Bdd, Edge, Edge, Edge) {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let c = bdd.var(Var(2));
        (bdd, a, b, c)
    }

    #[test]
    fn osdm_requires_empty_care() {
        let (mut bdd, a, b, _) = setup();
        let all_dc = Isf::new(a, Edge::ZERO);
        let other = Isf::new(b, Edge::ONE);
        assert!(matches_directed(&mut bdd, MatchCriterion::Osdm, all_dc, other));
        assert!(!matches_directed(&mut bdd, MatchCriterion::Osdm, other, all_dc));
        let m = try_match(&mut bdd, MatchCriterion::Osdm, other, all_dc).unwrap();
        assert_eq!(m, other, "osdm keeps the cared-about side");
    }

    #[test]
    fn osm_spends_first_side_only() {
        let (mut bdd, a, b, _) = setup();
        // [a·b, a] can be matched to [b, 1]: they agree where a=1 and the
        // first's DC set (¬a) contains the second's (∅).
        let ab = bdd.and(a, b);
        let first = Isf::new(ab, a);
        let second = Isf::new(b, Edge::ONE);
        assert!(matches_directed(&mut bdd, MatchCriterion::Osm, first, second));
        assert!(!matches_directed(&mut bdd, MatchCriterion::Osm, second, first));
        let m = try_match(&mut bdd, MatchCriterion::Osm, first, second).unwrap();
        assert_eq!(m, second);
        // The i-cover really i-covers both.
        assert!(m.i_covers(&mut bdd, first));
        assert!(m.i_covers(&mut bdd, second));
    }

    #[test]
    fn osm_requires_dc_containment() {
        let (mut bdd, a, b, _) = setup();
        // Functions agree on a (first's care), but first's DC set ¬a does
        // NOT contain second's DC set ¬b.
        let first = Isf::new(b, a);
        let second = Isf::new(b, b);
        // agreement on a holds (same f), but c1=a ≤ c2=b fails.
        assert!(!matches_directed(&mut bdd, MatchCriterion::Osm, first, second));
    }

    #[test]
    fn tsm_is_symmetric() {
        let (mut bdd, a, b, _) = setup();
        // [a, b] and [¬a? no]: choose agreeing-on-overlap pair.
        let x = Isf::new(a, b);
        let y = Isf::new(a, bdd.not(b));
        assert!(matches_directed(&mut bdd, MatchCriterion::Tsm, x, y));
        assert!(matches_directed(&mut bdd, MatchCriterion::Tsm, y, x));
        let m = try_match(&mut bdd, MatchCriterion::Tsm, x, y).unwrap();
        assert!(m.i_covers(&mut bdd, x));
        assert!(m.i_covers(&mut bdd, y));
        assert!(m.c.is_one());
    }

    #[test]
    fn tsm_rejects_conflicts() {
        let (mut bdd, a, _, _) = setup();
        let x = Isf::new(a, Edge::ONE);
        let y = Isf::new(bdd.not(a), Edge::ONE);
        assert!(try_match(&mut bdd, MatchCriterion::Tsm, x, y).is_none());
    }

    #[test]
    fn strength_hierarchy() {
        // osdm match ⟹ osm match ⟹ tsm match, on a grid of small ISFs.
        let (mut bdd, a, b, c) = setup();
        let fns = [Edge::ZERO, Edge::ONE, a, b, bdd.xor(a, b)];
        let cares = [Edge::ZERO, Edge::ONE, a, c, bdd.or(a, c)];
        for &f1 in &fns {
            for &c1 in &cares {
                for &f2 in &fns {
                    for &c2 in &cares {
                        let x = Isf::new(f1, c1);
                        let y = Isf::new(f2, c2);
                        let osdm = matches_directed(&mut bdd, MatchCriterion::Osdm, x, y);
                        let osm = matches_directed(&mut bdd, MatchCriterion::Osm, x, y);
                        let tsm = matches_directed(&mut bdd, MatchCriterion::Tsm, x, y);
                        assert!(!osdm || osm, "osdm must imply osm");
                        assert!(!osm || tsm, "osm must imply tsm");
                    }
                }
            }
        }
    }

    #[test]
    fn table1_properties() {
        // Paper Table 1: reflexivity / symmetry / transitivity of the three
        // criteria, checked exhaustively over a family of small ISFs.
        let (mut bdd, a, b, _) = setup();
        let ab = bdd.and(a, b);
        let aob = bdd.or(a, b);
        let isfs = [
            Isf::new(a, Edge::ONE),
            Isf::new(a, b),
            Isf::new(ab, a),
            Isf::new(aob, Edge::ZERO),
            Isf::new(b, aob),
            Isf::new(Edge::ONE, ab),
        ];
        // osdm: not reflexive (any ISF with c != 0), transitive.
        let with_care = Isf::new(a, Edge::ONE);
        assert!(!matches_directed(&mut bdd, MatchCriterion::Osdm, with_care, with_care));
        // osm and tsm: reflexive.
        for &x in &isfs {
            assert!(matches_directed(&mut bdd, MatchCriterion::Osm, x, x));
            assert!(matches_directed(&mut bdd, MatchCriterion::Tsm, x, x));
        }
        // tsm: symmetric (exhaustive on the family).
        for &x in &isfs {
            for &y in &isfs {
                let xy = matches_directed(&mut bdd, MatchCriterion::Tsm, x, y);
                let yx = matches_directed(&mut bdd, MatchCriterion::Tsm, y, x);
                assert_eq!(xy, yx);
            }
        }
        // osm: transitive (exhaustive on the family).
        for &x in &isfs {
            for &y in &isfs {
                for &z in &isfs {
                    let xy = matches_directed(&mut bdd, MatchCriterion::Osm, x, y);
                    let yz = matches_directed(&mut bdd, MatchCriterion::Osm, y, z);
                    let xz = matches_directed(&mut bdd, MatchCriterion::Osm, x, z);
                    if xy && yz {
                        assert!(xz, "osm transitivity violated");
                    }
                }
            }
        }
        // osm: not symmetric — witness.
        let first = Isf::new(ab, a);
        let second = Isf::new(b, Edge::ONE);
        assert!(matches_directed(&mut bdd, MatchCriterion::Osm, first, second));
        assert!(!matches_directed(&mut bdd, MatchCriterion::Osm, second, first));
        // tsm: not transitive — witness: [a,·] ~ all-DC ~ [¬a,·] but
        // [a,1] !~ [¬a,1].
        let x = Isf::new(a, Edge::ONE);
        let mid = Isf::new(b, Edge::ZERO);
        let z = Isf::new(bdd.not(a), Edge::ONE);
        assert!(matches_directed(&mut bdd, MatchCriterion::Tsm, x, mid));
        assert!(matches_directed(&mut bdd, MatchCriterion::Tsm, mid, z));
        assert!(!matches_directed(&mut bdd, MatchCriterion::Tsm, x, z));
    }

    #[test]
    fn merged_icover_is_maximal_dc() {
        let (mut bdd, a, b, c) = setup();
        // tsm merge keeps exactly c1 + c2 as care.
        let x = Isf::new(a, b);
        let y = Isf::new(a, c);
        let m = try_match(&mut bdd, MatchCriterion::Tsm, x, y).unwrap();
        assert_eq!(m.c, bdd.or(b, c));
    }

    #[test]
    fn merge_tsm_many_matches_pairwise_merge() {
        let (mut bdd, a, b, c) = setup();
        let xs = [Isf::new(a, b), Isf::new(a, c), Isf::new(a, Edge::ZERO)];
        let many = merge_tsm_many(&mut bdd, &xs);
        let two = merge_tsm(&mut bdd, xs[0], xs[1]);
        let all = merge_tsm(&mut bdd, two, xs[2]);
        assert!(many.same_function(&mut bdd, all));
        assert_eq!(many.c, all.c);
        for &x in &xs {
            assert!(many.i_covers(&mut bdd, x));
        }
    }

    #[test]
    fn names() {
        assert_eq!(MatchCriterion::Osdm.to_string(), "osdm");
        assert_eq!(MatchCriterion::Osm.name(), "osm");
        assert_eq!(MatchCriterion::Tsm.name(), "tsm");
        assert_eq!(MatchCriterion::ALL.len(), 3);
    }
}
