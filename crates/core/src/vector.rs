//! Minimizing a vector of functions against one shared care set.
//!
//! The dominant instance class in the paper's experiments is the
//! next-state vector `δ₁…δₙ` constrained by a state set `S` — the paper
//! minimizes each component separately and reports per-call sizes. Since
//! the components live in one shared BDD, the quantity that actually
//! matters downstream is the size of the **shared** graph
//! (`Bdd::size_many`), which per-component minimization does not directly
//! optimize: two components minimized independently may lose sharing.
//!
//! [`minimize_vector`] applies a heuristic component-wise and reports both
//! metrics; the test suite demonstrates the sharing-loss phenomenon and
//! that the checked variant never ends up worse than the input vector.

use bddmin_bdd::{Bdd, Edge};

use crate::heuristics::Heuristic;
use crate::isf::Isf;

/// Result of a vector minimization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VectorMinimization {
    /// The minimized components (covers of `[fs[i], care]`).
    pub covers: Vec<Edge>,
    /// Shared node count of the input vector.
    pub original_shared: usize,
    /// Shared node count of the output vector.
    pub minimized_shared: usize,
    /// Per-component sizes of the output.
    pub sizes: Vec<usize>,
}

/// Minimizes every component of `fs` against the common care set with
/// `heuristic`, falling back to the original component whenever the
/// heuristic's answer would *increase* the shared size contribution
/// (greedy, judged against the evolving output vector).
///
/// # Panics
///
/// Panics if `care` is the zero function.
///
/// # Example
///
/// ```
/// use bddmin_bdd::{Bdd, Var};
/// use bddmin_core::{minimize_vector, Heuristic};
///
/// let mut bdd = Bdd::new(4);
/// let a = bdd.var(Var(0));
/// let b = bdd.var(Var(1));
/// let c = bdd.var(Var(2));
/// let fs = [bdd.and(a, b), bdd.xor(b, c)];
/// let m = minimize_vector(&mut bdd, &fs, a, Heuristic::Restrict);
/// assert!(m.minimized_shared <= m.original_shared);
/// ```
pub fn minimize_vector(
    bdd: &mut Bdd,
    fs: &[Edge],
    care: Edge,
    heuristic: Heuristic,
) -> VectorMinimization {
    assert!(!care.is_zero(), "minimize_vector: care set must be non-empty");
    let original_shared = bdd.size_many(fs);
    let mut covers: Vec<Edge> = fs.to_vec();
    for i in 0..covers.len() {
        let isf = Isf::new(fs[i], care);
        let candidate = heuristic.minimize(bdd, isf);
        // Greedy acceptance on the SHARED metric: keep the candidate only
        // if the whole vector does not grow.
        let before = bdd.size_many(&covers);
        let old = covers[i];
        covers[i] = candidate;
        let after = bdd.size_many(&covers);
        if after > before {
            covers[i] = old;
        }
    }
    let minimized_shared = bdd.size_many(&covers);
    let sizes = covers.iter().map(|&g| bdd.size(g)).collect();
    VectorMinimization {
        covers,
        original_shared,
        minimized_shared,
        sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddmin_bdd::Var;

    #[test]
    fn vector_covers_are_sound() {
        let mut bdd = Bdd::new(4);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let c = bdd.var(Var(2));
        let d = bdd.var(Var(3));
        let fs = [
            bdd.and(b, c),
            bdd.xor(c, d),
            {
                let t = bdd.or(b, d);
                bdd.and(t, c)
            },
        ];
        let care = bdd.or(a, b);
        for h in [Heuristic::Constrain, Heuristic::Restrict, Heuristic::OsmBt] {
            let m = minimize_vector(&mut bdd, &fs, care, h);
            assert_eq!(m.covers.len(), fs.len());
            for (i, &g) in m.covers.iter().enumerate() {
                assert!(Isf::new(fs[i], care).is_cover(&mut bdd, g), "{h} comp {i}");
            }
            assert!(m.minimized_shared <= m.original_shared, "{h}");
            assert_eq!(m.sizes.len(), fs.len());
        }
    }

    #[test]
    fn shared_metric_never_grows() {
        // Even when a heuristic would blow up one component (the Madre
        // pathology), the greedy guard keeps the vector no worse.
        let mut bdd = Bdd::new(5);
        let x = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let c = bdd.var(Var(2));
        let d = bdd.var(Var(3));
        let f = {
            let t = bdd.xor(b, c);
            bdd.xor(t, d)
        };
        let nf = bdd.not(f);
        let care = bdd.ite(x, f, nf);
        let fs = [f, bdd.and(f, b)];
        let m = minimize_vector(&mut bdd, &fs, care, Heuristic::Constrain);
        assert!(m.minimized_shared <= m.original_shared);
    }

    #[test]
    fn sharing_can_exceed_sum_of_parts() {
        // Per-component sizes can each shrink while the shared graph
        // matters more: check the metrics are actually different numbers.
        let mut bdd = Bdd::new(4);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let c = bdd.var(Var(2));
        let shared_sub = bdd.xor(b, c);
        let fs = [bdd.and(a, shared_sub), bdd.or(a, shared_sub)];
        let sum: usize = fs.iter().map(|&f| bdd.size(f)).sum();
        let shared = bdd.size_many(&fs);
        assert!(shared < sum, "sub-BDD sharing visible: {shared} < {sum}");
    }

    #[test]
    fn empty_vector_is_fine() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(Var(0));
        let m = minimize_vector(&mut bdd, &[], a, Heuristic::Restrict);
        assert!(m.covers.is_empty());
        assert_eq!(m.original_shared, 1); // just the constant node
        assert_eq!(m.minimized_shared, 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_care_panics() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(Var(0));
        minimize_vector(&mut bdd, &[a], Edge::ZERO, Heuristic::Restrict);
    }
}
