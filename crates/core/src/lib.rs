//! # bddmin-core
//!
//! Heuristic minimization of BDDs using don't cares — a Rust implementation
//! of *Shiple, Hojati, Sangiovanni-Vincentelli, Brayton, DAC 1994*.
//!
//! Given an incompletely specified function [`Isf`] `[f, c]` (care function
//! `c`), the *exact BDD minimization* (EBM) problem asks for a cover
//! `f·c ≤ g ≤ f + ¬c` of minimum BDD size under a fixed variable order.
//! This crate implements the paper's heuristic framework:
//!
//! * **Matching criteria** ([`MatchCriterion`]): `osdm`, `osm`, `tsm` —
//!   a strength hierarchy of conditions under which two ISFs share a common
//!   i-cover ([`try_match`]).
//! * **Sibling matching** ([`generic_td`], [`SiblingConfig`]): the generic
//!   top-down matcher of paper Figure 2 whose instances include the classic
//!   `constrain` and `restrict` operators (paper Table 2).
//! * **Level matching** ([`opt_lv`], [`minimize_at_level`]): the global
//!   approach of paper Section 3.3 — gather sub-functions below a level,
//!   build the DMG/UMG matching graph, solve FMM (sink collection for osm,
//!   greedy clique cover for tsm) and substitute the i-covers.
//! * **Scheduling** ([`Schedule`]): the windowed combination of Section 3.4
//!   (safe osm transforms first, powerful tsm later, `constrain` to finish).
//! * **Heuristic registry** ([`Heuristic`]): all twelve heuristics compared
//!   in the paper's experiments behind one interface, plus the paper's
//!   `min` pseudo-heuristic ([`minimize_all`]).
//! * **Lower bound** ([`lower_bound`]): the cube-based bound of Section
//!   4.1.1, built on Theorem 7 (`constrain` is optimum for cube care sets).
//!
//! # Quick example
//!
//! ```
//! use bddmin_bdd::Bdd;
//! use bddmin_core::{Heuristic, Isf};
//!
//! let mut bdd = Bdd::new(2);
//! // The paper's running example: the instance (d1 01).
//! let (f, c) = bdd.from_leaf_spec("d1 01").unwrap();
//! let isf = Isf::new(f, c);
//!
//! let by_constrain = Heuristic::Constrain.minimize(&mut bdd, isf);
//! let by_osm = Heuristic::OsmTd.minimize(&mut bdd, isf);
//! assert!(isf.is_cover(&mut bdd, by_constrain));
//! assert!(isf.is_cover(&mut bdd, by_osm));
//! // On this instance osm_td finds the minimum (2 nodes), constrain does
//! // not (3 nodes) — the paper's first counterexample.
//! assert!(bdd.size(by_osm) < bdd.size(by_constrain));
//! ```

mod bitset;
mod exact;
mod heuristics;
mod isf;
mod level;
mod lower_bound;
mod matching;
mod memo_tags;
mod report;
pub mod rng;
mod schedule;
mod sibling;
pub mod sigfilter;
mod vector;
mod windowed;

/// Panic message of the unchecked wrappers when a budget trips underneath
/// them; mirrors the kernel's message.
pub(crate) const BUDGET_PANIC: &str = "resource budget exceeded in an unchecked operation; \
     use the *_budgeted variants under an armed budget";

/// Depth cap for the crate's own recursions (they descend one BDD level
/// per frame, so this also bounds stack use); matches the kernel's guard.
pub(crate) const MAX_REC_DEPTH: u32 = 1500;

pub use exact::{exact_minimum, ExactConfig, ExactLimit, ExactResult};
pub use heuristics::{minimize_all, Heuristic, MinimizeOutcome, ParseHeuristicError};
pub use isf::Isf;
pub use level::{
    gather_below_level, gather_below_level_mode, minimize_at_level, minimize_at_level_budgeted,
    minimize_at_level_mode, minimize_at_level_with, opt_lv, path_distance, solve_fmm_osm,
    solve_fmm_osm_with, solve_fmm_tsm, solve_fmm_tsm_with, substitute_below_level, CliqueOptions,
    GatherMode, GatheredFunction, LevelAccel,
};
#[doc(hidden)]
pub use level::{osm_matching_pairs, tsm_matching_pairs};
pub use lower_bound::{lower_bound, LowerBound};
pub use matching::{matches_directed, merge_tsm, merge_tsm_many, try_match, MatchCriterion};
pub use report::{MinReport, StepKind, StepReport, StepStatus};
pub use schedule::Schedule;
pub use vector::{minimize_vector, VectorMinimization};
pub use sibling::{generic_td, generic_td_budgeted, generic_td_stats, SiblingConfig, SiblingStats};
pub use windowed::{windowed_sibling_pass, windowed_sibling_pass_budgeted, LevelWindow};

// Property-based suite: needs the external `proptest` crate, which the
// offline build cannot resolve. Enable with `--features proptest` after
// restoring the dev-dependency (see Cargo.toml).
#[cfg(all(test, feature = "proptest"))]
mod proptests;
