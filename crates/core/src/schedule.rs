//! Scheduling transformations (paper Section 3.4).
//!
//! The paper's key observation is that the two heuristic classes are
//! complementary: osm can only lose the optimum in the superstructure
//! *above* the minimized region (Theorem 12), while tsm is more powerful
//! but less safe. The proposed schedule therefore applies *safer
//! transformations first*, top-down over windows of levels:
//!
//! 1. osm on siblings in the window,
//! 2. tsm on siblings in the window,
//! 3. osm on levels in the window,
//! 4. tsm on levels in the window,
//! 5. once fewer than `stop_top_down` levels remain, finish with
//!    `constrain` to assign the remaining don't cares locally.

use bddmin_bdd::{Bdd, Budget, Edge, Var};

use crate::isf::Isf;
use crate::level::{minimize_at_level, minimize_at_level_budgeted, CliqueOptions};
use crate::matching::MatchCriterion;
use crate::report::{MinReport, StepKind};
use crate::sibling::SiblingConfig;
use crate::windowed::{windowed_sibling_pass, windowed_sibling_pass_budgeted, LevelWindow};

/// Parameters of the windowed schedule.
///
/// # Example
///
/// ```
/// use bddmin_core::Schedule;
/// let fast = Schedule::new(4, 2).level_passes(false);
/// assert_eq!(fast.window_size, 4);
/// assert!(!fast.use_level_passes);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Number of levels per window.
    pub window_size: u32,
    /// When fewer than this many levels remain, call constrain and stop.
    pub stop_top_down: u32,
    /// Run the (expensive) level-matching steps 3–4; skipping them trades
    /// quality for runtime, as the paper suggests.
    pub use_level_passes: bool,
    /// Clique-cover options for the tsm level pass.
    pub clique_options: CliqueOptions,
}

impl Schedule {
    /// A schedule with the given window size and stop threshold, with level
    /// passes enabled.
    pub fn new(window_size: u32, stop_top_down: u32) -> Schedule {
        Schedule {
            window_size: window_size.max(1),
            stop_top_down,
            use_level_passes: true,
            clique_options: CliqueOptions::default(),
        }
    }

    /// Enables or disables the level-matching steps.
    #[must_use]
    pub fn level_passes(mut self, on: bool) -> Schedule {
        self.use_level_passes = on;
        self
    }

    /// Overrides the clique-cover options.
    #[must_use]
    pub fn with_clique_options(mut self, options: CliqueOptions) -> Schedule {
        self.clique_options = options;
        self
    }

    /// Runs the schedule and returns a cover of `[f, c]`.
    ///
    /// # Panics
    ///
    /// Panics if `isf.c` is the zero function.
    ///
    /// # Example
    ///
    /// ```
    /// use bddmin_bdd::Bdd;
    /// use bddmin_core::{Isf, Schedule};
    ///
    /// let mut bdd = Bdd::new(3);
    /// let (f, c) = bdd.from_leaf_spec("d1 01 1d 01").unwrap();
    /// let isf = Isf::new(f, c);
    /// let g = Schedule::new(2, 1).apply(&mut bdd, isf);
    /// assert!(isf.is_cover(&mut bdd, g));
    /// ```
    pub fn apply(&self, bdd: &mut Bdd, isf: Isf) -> Edge {
        assert!(!isf.c.is_zero(), "schedule: care set must be non-empty");
        let n = bdd.num_vars() as u32;
        let mut cur = isf;
        let mut level = 0u32;
        while level < n {
            if cur.c.is_one() {
                return cur.f;
            }
            let remaining = n - level;
            if remaining < self.stop_top_down {
                // Few levels left: assign the rest of the DCs locally.
                return bdd.constrain(cur.f, cur.c);
            }
            let hi = (level + self.window_size).min(n);
            let window = LevelWindow::new(Var(level), Var(hi));
            // Step 2: osm on siblings (with both refinements on: the safest
            // and best-performing sibling variant per the experiments).
            cur = windowed_sibling_pass(
                bdd,
                cur,
                SiblingConfig::new(MatchCriterion::Osm)
                    .match_complement(true)
                    .no_new_vars(true),
                window,
            );
            // Step 3: tsm on siblings.
            cur = windowed_sibling_pass(
                bdd,
                cur,
                SiblingConfig::new(MatchCriterion::Tsm),
                window,
            );
            if self.use_level_passes {
                // Steps 4–5: osm then tsm on each level of the window.
                for lvl in level..hi {
                    cur = minimize_at_level(
                        bdd,
                        cur,
                        Var(lvl),
                        MatchCriterion::Osm,
                        self.clique_options,
                        None,
                    );
                }
                for lvl in level..hi {
                    cur = minimize_at_level(
                        bdd,
                        cur,
                        Var(lvl),
                        MatchCriterion::Tsm,
                        self.clique_options,
                        None,
                    );
                }
            }
            level = hi;
        }
        if cur.c.is_one() {
            cur.f
        } else {
            bdd.constrain(cur.f, cur.c)
        }
    }

    /// Runs the schedule under a resource budget, degrading gracefully:
    /// any step that blows the budget is discarded and the schedule
    /// continues from the pre-step state (sound because every step
    /// rewrites the ISF into one that i-covers it; in particular a blown
    /// tsm/UMG clique-cover step at a level falls back to the level's osm
    /// result, which by Theorem 12 never loses the optimum below the
    /// level). Always returns a valid cover of `[f, c]` no larger than
    /// `f` itself, together with a [`MinReport`] of what completed.
    ///
    /// The budget is armed on entry and cleared before returning; with
    /// [`Budget::UNLIMITED`] every step completes and the cover equals
    /// [`Schedule::apply`]'s (modulo the final size clamp).
    ///
    /// # Panics
    ///
    /// Panics if `isf.c` is the zero function.
    ///
    /// # Example
    ///
    /// ```
    /// use bddmin_bdd::{Bdd, Budget};
    /// use bddmin_core::{Isf, Schedule};
    ///
    /// let mut bdd = Bdd::new(3);
    /// let (f, c) = bdd.from_leaf_spec("d1 01 1d 01").unwrap();
    /// let isf = Isf::new(f, c);
    /// // A one-step budget cannot complete anything, yet the result is
    /// // still a cover no larger than f.
    /// let (g, report) = Schedule::new(2, 1)
    ///     .apply_with_report(&mut bdd, isf, Budget::default().steps(1));
    /// assert!(isf.is_cover(&mut bdd, g));
    /// assert!(bdd.size(g) <= bdd.size(f));
    /// assert!(report.degraded());
    /// ```
    pub fn apply_with_report(&self, bdd: &mut Bdd, isf: Isf, budget: Budget) -> (Edge, MinReport) {
        assert!(!isf.c.is_zero(), "schedule: care set must be non-empty");
        let mut report = MinReport::new();
        bdd.set_budget(budget);
        let n = bdd.num_vars() as u32;
        let mut cur = isf;
        let mut level = 0u32;
        let mut finished: Option<Edge> = None;
        while level < n {
            if cur.c.is_one() {
                finished = Some(cur.f);
                break;
            }
            let remaining = n - level;
            if remaining < self.stop_top_down {
                // Few levels left: assign the rest of the DCs locally. If
                // even that blows the budget, the current representative is
                // itself a cover of the current ISF (and hence of the
                // original, which it i-covers).
                match bdd.try_constrain(cur.f, cur.c) {
                    Ok(g) => {
                        report.push_completed(StepKind::ConstrainTail, None);
                        finished = Some(g);
                    }
                    Err(e) => {
                        report.push_skipped(StepKind::ConstrainTail, None, e);
                        finished = Some(cur.f);
                    }
                }
                break;
            }
            let hi = (level + self.window_size).min(n);
            let window = LevelWindow::new(Var(level), Var(hi));
            let osm_cfg = SiblingConfig::new(MatchCriterion::Osm)
                .match_complement(true)
                .no_new_vars(true);
            match windowed_sibling_pass_budgeted(bdd, cur, osm_cfg, window) {
                Ok(next) => {
                    report.push_completed(StepKind::OsmSiblings, Some(level));
                    cur = next;
                }
                Err(e) => report.push_skipped(StepKind::OsmSiblings, Some(level), e),
            }
            let tsm_cfg = SiblingConfig::new(MatchCriterion::Tsm);
            match windowed_sibling_pass_budgeted(bdd, cur, tsm_cfg, window) {
                Ok(next) => {
                    report.push_completed(StepKind::TsmSiblings, Some(level));
                    cur = next;
                }
                Err(e) => report.push_skipped(StepKind::TsmSiblings, Some(level), e),
            }
            if self.use_level_passes {
                for (criterion, kind) in [
                    (MatchCriterion::Osm, StepKind::OsmLevel),
                    (MatchCriterion::Tsm, StepKind::TsmLevel),
                ] {
                    for lvl in level..hi {
                        match minimize_at_level_budgeted(
                            bdd,
                            cur,
                            Var(lvl),
                            criterion,
                            self.clique_options,
                            None,
                        ) {
                            Ok(next) => {
                                report.push_completed(kind, Some(lvl));
                                cur = next;
                            }
                            Err(e) => report.push_skipped(kind, Some(lvl), e),
                        }
                    }
                }
            }
            level = hi;
        }
        let candidate = match finished {
            Some(g) => g,
            None if cur.c.is_one() => cur.f,
            None => match bdd.try_constrain(cur.f, cur.c) {
                Ok(g) => {
                    report.push_completed(StepKind::ConstrainTail, None);
                    g
                }
                Err(e) => {
                    report.push_skipped(StepKind::ConstrainTail, None, e);
                    cur.f
                }
            },
        };
        bdd.clear_budget();
        // Unconditional soundness clamp, run unbudgeted: whatever the
        // degradation path produced, the returned cover is valid and no
        // larger than f (worst case f itself).
        if isf.is_cover(bdd, candidate) && bdd.size(candidate) <= bdd.size(isf.f) {
            (candidate, report)
        } else {
            report.fell_back_to_f = true;
            (isf.f, report)
        }
    }
}

impl Default for Schedule {
    /// Window of 4 levels, stop threshold 2, level passes on.
    fn default() -> Self {
        Schedule::new(4, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_produces_cover() {
        for spec in ["d1 01", "d1 01 1d 01", "1d d1 d0 0d", "0d d1 10 01 11 d0 d1 00"] {
            let mut bdd = Bdd::new(4);
            let (f, c) = bdd.from_leaf_spec(spec).unwrap();
            let isf = Isf::new(f, c);
            for schedule in [
                Schedule::new(1, 0),
                Schedule::new(2, 1),
                Schedule::new(4, 2),
                Schedule::new(8, 3).level_passes(false),
            ] {
                let g = schedule.apply(&mut bdd, isf);
                assert!(
                    isf.is_cover(&mut bdd, g),
                    "schedule {schedule:?} broke cover on {spec}"
                );
            }
        }
    }

    #[test]
    fn schedule_handles_total_functions() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(Var(0));
        let b = bdd.var(Var(1));
        let f = bdd.xor(a, b);
        let g = Schedule::default().apply(&mut bdd, Isf::total(f));
        assert_eq!(g, f);
    }

    #[test]
    fn large_stop_threshold_degenerates_to_constrain() {
        let mut bdd = Bdd::new(3);
        let (f, c) = bdd.from_leaf_spec("d1 01 1d 01").unwrap();
        let schedule = Schedule::new(2, 100);
        let g = schedule.apply(&mut bdd, Isf::new(f, c));
        assert_eq!(g, bdd.constrain(f, c));
    }

    #[test]
    fn window_size_clamped_to_one() {
        let s = Schedule::new(0, 0);
        assert_eq!(s.window_size, 1);
        let mut bdd = Bdd::new(2);
        let (f, c) = bdd.from_leaf_spec("d1 01").unwrap();
        let isf = Isf::new(f, c);
        let g = s.apply(&mut bdd, isf);
        assert!(isf.is_cover(&mut bdd, g));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_care_panics() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(Var(0));
        Schedule::default().apply(&mut bdd, Isf::new(a, Edge::ZERO));
    }
}
