//! Structured accounting of what a budgeted minimization actually did.
//!
//! Under a resource budget a run of the pipeline may complete some
//! transformation steps and have to discard others. Discarding is sound:
//! every step of the schedule rewrites the current ISF into one that
//! i-covers it (paper Definition 2), so the pre-step ISF is always a valid
//! point to continue from — dropping a blown tsm/UMG step keeps the osm
//! result for the level (justified by Theorem 12: osm level passes never
//! lose the optimum below the level). The [`MinReport`] records, step by
//! step, which transformations completed and which were skipped, so callers
//! can tell a full-quality result from a degraded one.

use bddmin_bdd::BudgetExceeded;

/// The kind of one pipeline step (the schedule of paper Section 3.4, plus
/// the single-shot heuristics of the registry).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// Windowed osm sibling pass (schedule step 1).
    OsmSiblings,
    /// Windowed tsm sibling pass (schedule step 2).
    TsmSiblings,
    /// osm level pass — DMG sink matching (schedule step 3).
    OsmLevel,
    /// tsm level pass — UMG greedy clique cover (schedule step 4).
    TsmLevel,
    /// The final `constrain` that assigns the remaining don't cares.
    ConstrainTail,
    /// A single-shot heuristic run as one indivisible step.
    Direct,
}

impl StepKind {
    /// Short lowercase name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            StepKind::OsmSiblings => "osm-siblings",
            StepKind::TsmSiblings => "tsm-siblings",
            StepKind::OsmLevel => "osm-level",
            StepKind::TsmLevel => "tsm-level",
            StepKind::ConstrainTail => "constrain-tail",
            StepKind::Direct => "direct",
        }
    }
}

impl std::fmt::Display for StepKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of one pipeline step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepStatus {
    /// The step ran to completion and its result was kept.
    Completed,
    /// The step blew the budget; its partial work was discarded and the
    /// pipeline continued from the pre-step state.
    Skipped(BudgetExceeded),
}

impl StepStatus {
    /// True for [`StepStatus::Completed`].
    pub fn is_completed(self) -> bool {
        matches!(self, StepStatus::Completed)
    }
}

/// One step of a budgeted minimization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepReport {
    /// What the step was.
    pub kind: StepKind,
    /// The level the step operated on, where applicable.
    pub level: Option<u32>,
    /// Whether it completed or was skipped.
    pub status: StepStatus,
}

/// What a budgeted minimization did, step by step.
///
/// The result accompanying a report is **always** a valid cover no larger
/// than the input representative `f` — degradation affects quality, never
/// soundness.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MinReport {
    /// The steps, in execution order.
    pub steps: Vec<StepReport>,
    /// True if the final clamp rejected the pipeline's candidate (it was
    /// larger than `f` or could not be validated) and `f` itself was
    /// returned instead.
    pub fell_back_to_f: bool,
}

impl MinReport {
    /// An empty report.
    pub fn new() -> MinReport {
        MinReport::default()
    }

    pub(crate) fn push_completed(&mut self, kind: StepKind, level: Option<u32>) {
        self.steps.push(StepReport {
            kind,
            level,
            status: StepStatus::Completed,
        });
    }

    pub(crate) fn push_skipped(&mut self, kind: StepKind, level: Option<u32>, err: BudgetExceeded) {
        self.steps.push(StepReport {
            kind,
            level,
            status: StepStatus::Skipped(err),
        });
    }

    /// Number of completed steps.
    pub fn completed(&self) -> usize {
        self.steps.iter().filter(|s| s.status.is_completed()).count()
    }

    /// Number of skipped steps.
    pub fn skipped(&self) -> usize {
        self.steps.len() - self.completed()
    }

    /// True if anything was skipped or the final clamp fell back to `f`:
    /// the result is sound but may be larger than an unbudgeted run's.
    pub fn degraded(&self) -> bool {
        self.fell_back_to_f || self.skipped() > 0
    }

    /// The first skipped step, if any — the point where the budget bit.
    pub fn first_skip(&self) -> Option<&StepReport> {
        self.steps.iter().find(|s| !s.status.is_completed())
    }

    /// Serializes the report as one JSON object, suitable for embedding
    /// in a result line of the service protocol. The encoding is total
    /// and deterministic: fixed key order, no floats, only names drawn
    /// from [`StepKind::name`] and `BudgetKind::name`, so equal reports
    /// produce byte-identical JSON.
    ///
    /// ```
    /// use bddmin_core::MinReport;
    /// assert_eq!(
    ///     MinReport::new().to_json(),
    ///     r#"{"steps":[],"completed":0,"skipped":0,"fell_back_to_f":false}"#
    /// );
    /// ```
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(r#"{"steps":["#);
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, r#"{{"kind":"{}""#, step.kind.name());
            if let Some(level) = step.level {
                let _ = write!(out, r#","level":{level}"#);
            }
            match step.status {
                StepStatus::Completed => out.push_str(r#","status":"completed"}"#),
                StepStatus::Skipped(e) => {
                    let _ = write!(out, r#","status":"skipped","cause":"{}"}}"#, e.kind.name());
                }
            }
        }
        let _ = write!(
            out,
            r#"],"completed":{},"skipped":{},"fell_back_to_f":{}}}"#,
            self.completed(),
            self.skipped(),
            self.fell_back_to_f
        );
        out
    }
}

impl std::fmt::Display for MinReport {
    /// One line: `3 completed, 2 skipped (first: tsm-level@1 steps)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} completed, {} skipped", self.completed(), self.skipped())?;
        if let Some(step) = self.first_skip() {
            write!(f, " (first: {}", step.kind)?;
            if let Some(lvl) = step.level {
                write!(f, "@{lvl}")?;
            }
            if let StepStatus::Skipped(e) = step.status {
                write!(f, " {}", e.kind.name())?;
            }
            write!(f, ")")?;
        }
        if self.fell_back_to_f {
            write!(f, ", fell back to f")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_degradation() {
        let mut r = MinReport::new();
        assert!(!r.degraded());
        r.push_completed(StepKind::OsmSiblings, Some(0));
        r.push_skipped(StepKind::TsmLevel, Some(1), BudgetExceeded::STEPS);
        r.push_completed(StepKind::ConstrainTail, None);
        assert_eq!(r.completed(), 2);
        assert_eq!(r.skipped(), 1);
        assert!(r.degraded());
        let first = r.first_skip().unwrap();
        assert_eq!(first.kind, StepKind::TsmLevel);
        assert_eq!(first.level, Some(1));
    }

    #[test]
    fn json_is_deterministic_and_names_every_step() {
        let mut r = MinReport::new();
        r.push_completed(StepKind::OsmSiblings, Some(0));
        r.push_skipped(StepKind::TsmLevel, Some(1), BudgetExceeded::STEPS);
        r.fell_back_to_f = true;
        assert_eq!(
            r.to_json(),
            r#"{"steps":[{"kind":"osm-siblings","level":0,"status":"completed"},{"kind":"tsm-level","level":1,"status":"skipped","cause":"steps"}],"completed":1,"skipped":1,"fell_back_to_f":true}"#
        );
        // Level-less steps omit the key entirely rather than emit null.
        let mut r = MinReport::new();
        r.push_completed(StepKind::Direct, None);
        assert_eq!(
            r.to_json(),
            r#"{"steps":[{"kind":"direct","status":"completed"}],"completed":1,"skipped":0,"fell_back_to_f":false}"#
        );
    }

    #[test]
    fn display_is_compact() {
        let mut r = MinReport::new();
        r.push_completed(StepKind::Direct, None);
        assert_eq!(r.to_string(), "1 completed, 0 skipped");
        r.push_skipped(StepKind::TsmLevel, Some(3), BudgetExceeded::NODES);
        r.fell_back_to_f = true;
        assert_eq!(
            r.to_string(),
            "1 completed, 1 skipped (first: tsm-level@3 nodes), fell back to f"
        );
    }
}
