//! Whole-pipeline integration: benchmark generation → product machine →
//! instrumented traversal → measurement → aggregation → rendering, on a
//! bounded configuration so it stays fast in CI.

use bddmin_core::Heuristic;
use bddmin_eval::report::{render_figure3, render_summary, render_table3, render_table4};
use bddmin_eval::runner::{run_experiment, ExperimentConfig, OnsetBucket};
use bddmin_eval::tables::{figure3, summary, table3, table4};

fn small_config() -> ExperimentConfig {
    ExperimentConfig {
        heuristics: Heuristic::ALL.to_vec(),
        lower_bound_cubes: 20,
        max_iterations: Some(3),
        only_benchmarks: vec!["tlc".into(), "s386".into(), "minmax5".into()],
        ..Default::default()
    }
}

#[test]
fn full_pipeline_produces_consistent_tables() {
    let results = run_experiment(&small_config());
    assert!(!results.calls.is_empty(), "no instances intercepted");

    // Every call is internally consistent.
    for call in &results.calls {
        assert_eq!(call.sizes.len(), Heuristic::ALL.len());
        let min = *call.sizes.iter().min().unwrap();
        assert_eq!(call.min_size, min);
        assert!(call.lower_bound <= call.min_size);
        assert!(call.lower_bound >= 1);
        // f_orig's size equals the instance's |f|.
        let f_idx = results.index_of(Heuristic::FOrig).unwrap();
        assert_eq!(call.sizes[f_idx], call.f_size);
    }

    // Table 3: min row ≤ every heuristic row; ranks are a permutation.
    let t3 = table3(&results, None);
    let min_total = t3
        .rows
        .iter()
        .find(|r| r.name == "min")
        .expect("min row")
        .total_size;
    let mut ranks = Vec::new();
    for row in &t3.rows {
        if let Some(rank) = row.rank {
            assert!(row.total_size >= min_total);
            ranks.push(rank);
        }
    }
    ranks.sort_unstable();
    assert_eq!(ranks, (1..=Heuristic::ALL.len()).collect::<Vec<_>>());
    // Bucket tables partition the calls.
    let n_small = table3(&results, Some(OnsetBucket::Small)).num_calls;
    let n_med = table3(&results, Some(OnsetBucket::Medium)).num_calls;
    let n_large = table3(&results, Some(OnsetBucket::Large)).num_calls;
    assert_eq!(n_small + n_med + n_large, results.calls.len());

    // Table 4: diagonal is zero, nothing strictly beats min, and the
    // (i,j)+(j,i) sum never exceeds 100%.
    let subset = [
        Heuristic::FOrig,
        Heuristic::Constrain,
        Heuristic::Restrict,
        Heuristic::OsmBt,
        Heuristic::TsmTd,
        Heuristic::OptLv,
    ];
    let t4 = table4(&results, &subset, true, None);
    let k = t4.names.len();
    for i in 0..k {
        assert_eq!(t4.entries[i][i], 0.0);
        assert_eq!(t4.entries[i][k - 1], 0.0, "beats min?");
        for j in 0..k {
            assert!(t4.entries[i][j] + t4.entries[j][i] <= 100.0 + 1e-9);
        }
    }

    // Figure 3: monotone curves ending at 100%; min's own curve would be
    // flat at 100 (not included), f_orig's y-intercept is the % of calls
    // where f is already minimum.
    let f3 = figure3(
        &results,
        &[Heuristic::FOrig, Heuristic::Restrict],
        10.0,
        300.0,
        None,
    );
    for curve in &f3.curves {
        assert!(curve.windows(2).all(|w| w[1].1 >= w[0].1));
        assert!((curve.last().unwrap().1 - 100.0).abs() < 1e-9);
    }

    // Summary: reduction factor ≥ 1 and min/bound ≥ 1.
    let s = summary(&results, None);
    assert!(s.reduction_factor >= 1.0);
    assert!(s.min_over_bound >= 1.0);

    // Rendering produces non-empty text for all artifacts.
    assert!(render_table3(&t3).contains("Table 3"));
    assert!(render_table4(&t4).contains("Table 4"));
    assert!(render_figure3(&f3).contains("Figure 3"));
    assert!(render_summary("all", &s).contains("reduction factor"));
}

#[test]
fn experiment_is_deterministic() {
    let a = run_experiment(&small_config());
    let b = run_experiment(&small_config());
    assert_eq!(a.calls.len(), b.calls.len());
    assert_eq!(a.filtered, b.filtered);
    for (x, y) in a.calls.iter().zip(&b.calls) {
        assert_eq!(x.benchmark, y.benchmark);
        assert_eq!(x.sizes, y.sizes);
        assert_eq!(x.min_size, y.min_size);
        assert_eq!(x.lower_bound, y.lower_bound);
        assert_eq!(x.c_onset_pct, y.c_onset_pct);
    }
}

#[test]
fn both_instance_classes_appear() {
    // The SIS-style traversal should produce both frontier-choice (large
    // onset) and image-constrain (small onset) instances.
    let results = run_experiment(&ExperimentConfig {
        heuristics: vec![Heuristic::FOrig, Heuristic::Restrict],
        lower_bound_cubes: 0,
        max_iterations: Some(5),
        only_benchmarks: vec!["s386".into(), "s820".into(), "mult16b".into()],
        ..Default::default()
    });
    let small = results.calls_in(Some(OnsetBucket::Small)).len();
    let large = results.calls_in(Some(OnsetBucket::Large)).len();
    assert!(small > 0, "no small-onset (image) instances");
    assert!(large > 0, "no large-onset (frontier) instances");
    // The paper's observation: small-onset calls dominate.
    assert!(small > large);
}
