//! Tier-1 replay of the committed regression corpus.
//!
//! Every file under `tests/corpus/` is a shrunk reproducer for a bug
//! that existed at some point (or a seed instance from the paper). The
//! replay parses each one — failing loudly on anything unparsable, so a
//! corrupted corpus cannot silently stop testing — and re-runs **all
//! eleven** oracles on it with no mutant. A fixed bug must stay fixed;
//! this suite is what makes the corpus a permanent regression fence
//! rather than a pile of stale text files.
//!
//! Wired into `cargo test` via a `[[test]]` path entry in
//! `crates/verify/Cargo.toml`, the same pattern `crates/eval` uses for
//! the workspace-level suites.

use std::path::PathBuf;

use bddmin_verify::corpus;
use bddmin_verify::oracle::{check, Mutant, Oracle};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let dir = corpus_dir();
    let entries = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read corpus dir {}: {e}", dir.display()));
    let mut files: Vec<PathBuf> = entries
        .map(|entry| entry.expect("readable corpus dir entry").path())
        .filter(|path| path.is_file())
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_is_present_and_parsable() {
    let files = corpus_files();
    assert!(
        !files.is_empty(),
        "tests/corpus/ is empty — the seed corpus must be committed"
    );
    for path in files {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        corpus::parse(&text)
            .unwrap_or_else(|e| panic!("unparsable corpus entry {}: {e}", path.display()));
    }
}

#[test]
fn every_corpus_entry_passes_all_eleven_oracles() {
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let entry = corpus::parse(&text)
            .unwrap_or_else(|e| panic!("unparsable corpus entry {}: {e}", path.display()));
        for oracle in Oracle::ALL {
            let verdict = check(oracle, &entry.instance, Mutant::None);
            assert!(
                !verdict.is_fail(),
                "regression resurrected: {} fails oracle {} (originally tripped {}): {:?}",
                path.display(),
                oracle,
                entry.oracle,
                verdict
            );
        }
    }
}
