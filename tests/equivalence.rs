//! End-to-end FSM equivalence checking (the paper's application) with
//! minimization in the loop.

use bddmin_core::Heuristic;
use bddmin_fsm::{
    generators, parse_blif, print_blif, verify_fsm_equivalence, with_flipped_latch, MinimizeHook,
};

/// Every machine in the suite is equivalent to itself, whatever heuristic
/// drives the frontier minimization.
#[test]
fn suite_self_equivalence_under_every_heuristic() {
    for bench in generators::benchmark_suite() {
        // Keep the expensive all-heuristic check to the small machines.
        let heuristics: &[Heuristic] = if bench.circuit.num_latches() <= 4 {
            &[Heuristic::Constrain, Heuristic::Restrict, Heuristic::OsmBt]
        } else {
            &[Heuristic::Restrict]
        };
        for &h in heuristics {
            let mut hook =
                move |bdd: &mut bddmin_bdd::Bdd, isf: bddmin_core::Isf| h.minimize(bdd, isf);
            let hook_ref: &mut MinimizeHook<'_> = &mut hook;
            let verdict =
                verify_fsm_equivalence(&bench.circuit, &bench.circuit.clone(), Some(hook_ref));
            assert!(
                verdict.is_ok(),
                "{} declared inequivalent to itself under {h}",
                bench.paper_name
            );
        }
    }
}

/// Structural perturbation is detected, and the verdict (including the
/// failure depth) does not depend on the minimization heuristic.
#[test]
fn perturbation_detected_at_same_depth() {
    let a = generators::counter("cnt", 3);
    let bad = with_flipped_latch(&a, 1);
    let mut depths = Vec::new();
    for h in [Heuristic::Constrain, Heuristic::OsmBt, Heuristic::TsmTd] {
        let mut hook = move |bdd: &mut bddmin_bdd::Bdd, isf: bddmin_core::Isf| h.minimize(bdd, isf);
        let hook_ref: &mut MinimizeHook<'_> = &mut hook;
        let verdict = verify_fsm_equivalence(&a, &bad, Some(hook_ref));
        let depth = verdict.expect_err("flipped machine must differ");
        depths.push(depth);
    }
    assert!(depths.windows(2).all(|w| w[0] == w[1]), "{depths:?}");
}

/// A machine is equivalent to its own BLIF round trip.
#[test]
fn blif_round_trip_machines_are_equivalent() {
    for name in ["tlc", "s386", "minmax5"] {
        let bench = generators::benchmark_suite()
            .into_iter()
            .find(|b| b.paper_name == name)
            .unwrap();
        let text = print_blif(&bench.circuit);
        let reparsed = parse_blif(&text).expect("round trip parses");
        assert!(
            verify_fsm_equivalence(&bench.circuit, &reparsed, None).is_ok(),
            "{name} round trip changed behaviour"
        );
    }
}

/// Two structurally different implementations of the same behaviour are
/// proven equivalent: a binary counter versus its re-encoded BLIF clone
/// with an extra inverter pair on a next-state function.
#[test]
fn equivalence_across_different_structures() {
    let a = generators::counter("cnt", 2);
    // Build an equivalent machine by double-inverting a next-state net in
    // the BLIF text (structural change, behavioural identity).
    let mut text = print_blif(&a);
    // q0 next-state is the output of some gate feeding `.latch <net> q0 0`;
    // splice an inverter pair: latch input -> inv1 -> inv2 -> latch.
    let latch_line = text
        .lines()
        .find(|l| l.starts_with(".latch") && l.contains(" q0 "))
        .expect("latch q0 present")
        .to_owned();
    let parts: Vec<&str> = latch_line.split_whitespace().collect();
    let data_net = parts[1];
    let new_latch = format!(".latch inv2 {} {}", parts[2], parts[3]);
    text = text.replace(&latch_line, &new_latch);
    text = text.replace(
        ".end",
        &format!(".names {data_net} inv1\n0 1\n.names inv1 inv2\n0 1\n.end"),
    );
    let b = parse_blif(&text).expect("modified BLIF parses");
    assert!(verify_fsm_equivalence(&a, &b, None).is_ok());
    // Sanity: a single inverter (wrong polarity) is caught.
    let mut wrong = print_blif(&a);
    let latch_line = wrong
        .lines()
        .find(|l| l.starts_with(".latch") && l.contains(" q0 "))
        .unwrap()
        .to_owned();
    let parts: Vec<&str> = latch_line.split_whitespace().collect();
    let data_net = parts[1].to_owned();
    let new_latch = format!(".latch inv1 {} {}", parts[2], parts[3]);
    wrong = wrong.replace(&latch_line, &new_latch);
    wrong = wrong.replace(".end", &format!(".names {data_net} inv1\n0 1\n.end"));
    let w = parse_blif(&wrong).expect("modified BLIF parses");
    assert!(verify_fsm_equivalence(&a, &w, None).is_err());
}
