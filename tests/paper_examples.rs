//! Integration tests reproducing the paper's worked examples end-to-end
//! across the crates.

use bddmin_bdd::{Bdd, Var};
use bddmin_core::{
    generic_td, lower_bound, minimize_all, Heuristic, Isf, MatchCriterion, SiblingConfig,
};

/// §3.2 example 1: `(d1 01)` — constrain gives `(11 01)`, minimum `(01 01)`.
#[test]
fn example1_constrain_suboptimal() {
    let mut bdd = Bdd::new(2);
    let (f, c) = bdd.from_leaf_spec("d1 01").unwrap();
    let isf = Isf::new(f, c);
    let constrain_result = Heuristic::Constrain.minimize(&mut bdd, isf);
    let paper_result = bdd.from_leaf_spec("11 01").unwrap().0;
    let paper_minimum = bdd.from_leaf_spec("01 01").unwrap().0;
    assert_eq!(constrain_result, paper_result);
    assert!(isf.is_cover(&mut bdd, paper_minimum));
    assert_eq!(bdd.size(paper_minimum), 2);
    assert_eq!(bdd.size(constrain_result), 3);
    // osm_td and tsm_td find a minimum on this instance (paper's claim).
    for h in [Heuristic::OsmTd, Heuristic::TsmTd] {
        let g = h.minimize(&mut bdd, isf);
        assert_eq!(bdd.size(g), 2, "{h}");
    }
}

/// §3.2 example 2: `(d1 01 1d 01)` — osm_td gives `(01 01 11 01)`,
/// minimum `(11 01 11 01)`; constrain and tsm_td find a minimum.
#[test]
fn example2_osm_td_suboptimal() {
    let mut bdd = Bdd::new(3);
    let (f, c) = bdd.from_leaf_spec("d1 01 1d 01").unwrap();
    let isf = Isf::new(f, c);
    let osm_result = Heuristic::OsmTd.minimize(&mut bdd, isf);
    let paper_result = bdd.from_leaf_spec("01 01 11 01").unwrap().0;
    let paper_minimum = bdd.from_leaf_spec("11 01 11 01").unwrap().0;
    assert_eq!(osm_result, paper_result);
    assert!(isf.is_cover(&mut bdd, paper_minimum));
    let g_con = Heuristic::Constrain.minimize(&mut bdd, isf);
    assert_eq!(bdd.size(g_con), bdd.size(paper_minimum));
    let g_tsm = Heuristic::TsmTd.minimize(&mut bdd, isf);
    assert_eq!(bdd.size(g_tsm), bdd.size(paper_minimum));
}

/// §3.2 example 3: `(1d d1 d0 0d)` — tsm_td gives `(10 01 10 01)`,
/// minimum `(11 11 00 00)`; constrain and osm_td find a minimum.
#[test]
fn example3_tsm_td_suboptimal() {
    let mut bdd = Bdd::new(3);
    let (f, c) = bdd.from_leaf_spec("1d d1 d0 0d").unwrap();
    let isf = Isf::new(f, c);
    let tsm_result = Heuristic::TsmTd.minimize(&mut bdd, isf);
    let paper_result = bdd.from_leaf_spec("10 01 10 01").unwrap().0;
    let paper_minimum = bdd.from_leaf_spec("11 11 00 00").unwrap().0;
    assert_eq!(tsm_result, paper_result);
    assert!(isf.is_cover(&mut bdd, paper_minimum));
    // The minimum is ¬x1: two nodes.
    let nx1 = bdd.literal(Var(0), false);
    assert_eq!(paper_minimum, nx1);
    let g_con = Heuristic::Constrain.minimize(&mut bdd, isf);
    assert_eq!(bdd.size(g_con), 2);
    let g_osm = Heuristic::OsmTd.minimize(&mut bdd, isf);
    assert_eq!(bdd.size(g_osm), 2);
    assert_eq!(bdd.size(tsm_result), 3);
}

/// No heuristic always beats another: each of the three examples is won by
/// a different pair (the paper's point about incomparability).
#[test]
fn heuristics_are_incomparable() {
    let mut bdd = Bdd::new(3);
    let mut wins = [0usize; 3]; // constrain, osm_td, tsm_td
    for spec in ["d1 01", "d1 01 1d 01", "1d d1 d0 0d"] {
        let (f, c) = bdd.from_leaf_spec(spec).unwrap();
        let isf = Isf::new(f, c);
        let g_con = Heuristic::Constrain.minimize(&mut bdd, isf);
        let g_osm = Heuristic::OsmTd.minimize(&mut bdd, isf);
        let g_tsm = Heuristic::TsmTd.minimize(&mut bdd, isf);
        let sizes = [bdd.size(g_con), bdd.size(g_osm), bdd.size(g_tsm)];
        let best = *sizes.iter().min().unwrap();
        for (i, &s) in sizes.iter().enumerate() {
            if s == best {
                wins[i] += 1;
            }
        }
    }
    // Each heuristic ties the minimum exactly twice over the three
    // examples — 1: osm+tsm, 2: constrain+tsm, 3: constrain+osm.
    assert_eq!(wins, [2, 2, 2]);
}

/// Theorem 7: every sibling heuristic is optimal when `c` is a cube, and
/// the cube-based lower bound is tight there.
#[test]
fn theorem7_and_lower_bound_consistency() {
    let mut bdd = Bdd::new(4);
    let a = bdd.var(Var(0));
    let c3 = bdd.var(Var(2));
    let cube = bdd.and(a, c3);
    let b = bdd.var(Var(1));
    let d = bdd.var(Var(3));
    let f = {
        let x = bdd.xor(b, d);
        let y = bdd.and(a, b);
        bdd.or(x, y)
    };
    let isf = Isf::new(f, cube);
    let sizes: Vec<usize> = Heuristic::SIBLING
        .iter()
        .map(|h| {
            let g = h.minimize(&mut bdd, isf);
            assert!(isf.is_cover(&mut bdd, g));
            bdd.size(g)
        })
        .collect();
    // All sibling heuristics agree on the optimal size.
    assert!(sizes.windows(2).all(|w| w[0] == w[1]), "{sizes:?}");
    let lb = lower_bound(&mut bdd, isf, 1000);
    assert_eq!(lb.bound, sizes[0], "bound tight for cube care");
}

/// The Madre example (§3.2): introducing a foreign variable can shrink the
/// cover to two nodes; no-new-vars heuristics cannot find it, but it is a
/// valid cover.
#[test]
fn madre_example_new_variable_wins() {
    let mut bdd = Bdd::new(4);
    let x = bdd.var(Var(0));
    let b = bdd.var(Var(1));
    let c = bdd.var(Var(2));
    let d = bdd.var(Var(3));
    let f = {
        let t = bdd.xor(b, c);
        bdd.xor(t, d)
    };
    let nf = bdd.not(f);
    let care = bdd.ite(x, f, nf);
    let isf = Isf::new(f, care);
    // x is a 2-node cover.
    assert!(isf.is_cover(&mut bdd, x));
    assert_eq!(bdd.size(x), 2);
    // f itself is a cover of size 4.
    assert_eq!(bdd.size(f), 4);
    // Every heuristic still returns a valid cover.
    let (results, min) = minimize_all(&mut bdd, isf);
    for (h, g) in results {
        assert!(isf.is_cover(&mut bdd, g), "{h}");
    }
    assert!(bdd.size(min) <= bdd.size(f));
}

/// Proposition 4's containment check, executed: a guessed cover can be
/// verified in polynomial time by two implication checks.
#[test]
fn ebm_membership_check() {
    let mut bdd = Bdd::new(3);
    let (f, c) = bdd.from_leaf_spec("d1 01 1d 01").unwrap();
    let isf = Isf::new(f, c);
    // Guess: the paper minimum for this instance.
    let guess = bdd.from_leaf_spec("11 01 11 01").unwrap().0;
    assert!(isf.is_cover(&mut bdd, guess));
    assert!(bdd.size(guess) < bdd.size(f) + 1);
}

/// Framework-vs-classic identities across crates (Table 2 rows 1 and 2) on
/// a mixed corpus of leaf specs.
#[test]
fn framework_identities_on_corpus() {
    let corpus = [
        "d1 01",
        "1d d1 d0 0d",
        "0d d1 10 01 11 d0 d1 00",
        "01 0d 01 d1",
        "dd 01 11 d0",
        "0d 1d d1 10 01 11 d0 d1 00 11 01 10 d0 0d 1d d1",
    ];
    for spec in corpus {
        let mut bdd = Bdd::new(5);
        let (f, c) = bdd.from_leaf_spec(spec).unwrap();
        if c.is_zero() {
            continue;
        }
        let isf = Isf::new(f, c);
        let con = generic_td(&mut bdd, isf, SiblingConfig::new(MatchCriterion::Osdm));
        assert_eq!(con, bdd.constrain(f, c), "{spec}");
        let res = generic_td(
            &mut bdd,
            isf,
            SiblingConfig::new(MatchCriterion::Osdm).no_new_vars(true),
        );
        assert_eq!(res, bdd.restrict(f, c), "{spec}");
    }
}
