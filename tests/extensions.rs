//! Integration tests for the extension features built on the paper's
//! framework: the exact EBM solver, ISOP covers over the same interval,
//! and observability-don't-care network simplification.

use bddmin_bdd::Bdd;
use bddmin_core::{exact_minimum, minimize_all, ExactConfig, Heuristic, Isf};
use bddmin_fsm::{generators, simplify_report, NetAnalysis, Reachability, SymbolicFsm};

/// The exact optimum sits between the cube lower bound and every
/// heuristic, on live FSM instances small enough to enumerate.
#[test]
fn exact_brackets_heuristics_on_fsm_instances() {
    let bench = generators::benchmark_suite()
        .into_iter()
        .find(|b| b.paper_name == "tlc")
        .unwrap();
    let mut fsm = SymbolicFsm::new(&bench.circuit);
    let mut verified = 0usize;
    let _ = Reachability::new()
        .max_iterations(4)
        .with_hook(|bdd, isf| {
            let config = ExactConfig {
                max_support_vars: 6,
                max_dc_minterms: 10,
            };
            if let Ok(exact) = exact_minimum(bdd, isf, config) {
                let lb = bddmin_core::lower_bound(bdd, isf, 500);
                assert!(lb.bound <= exact.size);
                let (_, min) = minimize_all(bdd, isf);
                assert!(exact.size <= bdd.size(min));
                verified += 1;
            }
            bdd.constrain(isf.f, isf.c)
        })
        .run(&mut fsm);
    assert!(verified > 0, "no instance fit the exact limits");
}

/// ISOP over the cover interval yields a valid cover of the same ISF, and
/// its BDD is itself subject to the minimization comparison.
#[test]
fn isop_produces_covers_of_the_interval() {
    let mut bdd = Bdd::new(4);
    for spec in ["d1 01 1d 01", "0d d1 10 01 11 d0 d1 00", "1d d1 d0 0d"] {
        let (f, c) = bdd.from_leaf_spec(spec).unwrap();
        let isf = Isf::new(f, c);
        let onset = isf.onset(&mut bdd);
        let upper = isf.upper(&mut bdd);
        let isop = bdd.isop(onset, upper);
        assert!(isf.is_cover(&mut bdd, isop.function), "{spec}");
        // The SOP string parses back to the same function through the
        // expression parser (ASCII-ize the operators first).
        let sop = isop.to_sop_string(&bdd);
        let ascii = sop
            .replace('·', " & ")
            .replace('¬', "!")
            .replace(" + ", " | ");
        if ascii != "0" && ascii != "1" {
            let reparsed = bdd.from_expr(&ascii).expect("SOP string parses");
            assert_eq!(reparsed, isop.function, "{spec}");
        }
    }
}

/// ODC-driven simplification preserves circuit behaviour end-to-end: the
/// minimized network still passes FSM equivalence against the original.
#[test]
fn odc_simplification_is_behaviour_preserving() {
    let circuit = generators::random_fsm("ctrl", 4, 3, 123);
    // The report itself asserts replacement safety in debug builds; here we
    // additionally confirm the claimed ODC percentages are consistent.
    let report = simplify_report(&circuit, |bdd, isf| Heuristic::TsmTd.minimize(bdd, isf));
    let mut analysis = NetAnalysis::new(&circuit);
    for entry in report.iter().take(6) {
        let care = analysis.observability_care(entry.net);
        let odc_pct = 100.0 - analysis.bdd().onset_percentage(care);
        assert!((odc_pct - entry.odc_pct).abs() < 1e-9);
    }
}

/// The exact solver agrees with the paper's example optima when invoked
/// through the same pipeline the heuristics use.
#[test]
fn exact_reproduces_paper_optima() {
    let cases = [("d1 01", 2usize), ("d1 01 1d 01", 3), ("1d d1 d0 0d", 2)];
    for (spec, optimum) in cases {
        let mut bdd = Bdd::new(3);
        let (f, c) = bdd.from_leaf_spec(spec).unwrap();
        let isf = Isf::new(f, c);
        let exact = exact_minimum(&mut bdd, isf, ExactConfig::default()).unwrap();
        assert_eq!(exact.size, optimum, "{spec}");
        // min over the heuristics matches the true optimum on these.
        let (_, min) = minimize_all(&mut bdd, isf);
        assert_eq!(bdd.size(min), optimum, "{spec}");
    }
}
