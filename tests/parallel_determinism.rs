//! Parallel evaluation determinism: `--jobs N` must be invisible in every
//! rendered artifact.
//!
//! The parallel runner records the instance stream sequentially, shards
//! only the (pure) measurements, and merges in recording order — so with
//! wall-clock columns stripped, the rendered Table 3 / Table 4 / Figure 3
//! must be **byte-identical** for every job count, and must also match the
//! legacy interleaved runner.

use bddmin_core::Heuristic;
use bddmin_eval::par::run_experiment_jobs;
use bddmin_eval::report::{
    render_figure3, render_summary, render_table3, render_table4, table3_csv,
};
use bddmin_eval::runner::{run_experiment, ExperimentConfig, ExperimentResults, OnsetBucket};
use bddmin_eval::tables::{figure3, summary, table3, table4};

fn test_config() -> ExperimentConfig {
    ExperimentConfig {
        heuristics: Heuristic::ALL.to_vec(),
        lower_bound_cubes: 25,
        max_iterations: Some(4),
        only_benchmarks: vec!["tlc".to_owned(), "minmax5".to_owned()],
        ..Default::default()
    }
}

/// Renders every artifact the three binaries emit, concatenated.
fn render_all(results: &ExperimentResults) -> String {
    let mut out = String::new();
    let subset = [
        Heuristic::FOrig,
        Heuristic::Constrain,
        Heuristic::Restrict,
        Heuristic::OsmBt,
        Heuristic::TsmTd,
        Heuristic::OptLv,
    ];
    for bucket in [
        None,
        Some(OnsetBucket::Small),
        Some(OnsetBucket::Medium),
        Some(OnsetBucket::Large),
    ] {
        let t3 = table3(results, bucket);
        if t3.num_calls > 0 {
            out.push_str(&render_table3(&t3));
            out.push_str(&table3_csv(&t3));
        }
        let t4 = table4(results, &subset, true, bucket);
        if t4.num_calls > 0 {
            out.push_str(&render_table4(&t4));
        }
        let f3 = figure3(results, &subset[..5], 5.0, 100.0, bucket);
        if f3.num_calls > 0 {
            out.push_str(&render_figure3(&f3));
        }
        out.push_str(&render_summary("bucket", &summary(results, bucket)));
    }
    out
}

#[test]
fn jobs_4_is_byte_identical_to_jobs_1() {
    let config = test_config();
    let mut one = run_experiment_jobs(&config, 1);
    let mut four = run_experiment_jobs(&config, 4);
    one.strip_times();
    four.strip_times();
    assert!(!one.calls.is_empty(), "config produced no instances");
    let render_one = render_all(&one);
    let render_four = render_all(&four);
    assert_eq!(render_one, render_four, "job count leaked into the tables");
}

#[test]
fn parallel_runner_matches_legacy_interleaved_runner() {
    let config = test_config();
    let mut legacy = run_experiment(&config);
    let mut par = run_experiment_jobs(&config, 3);
    legacy.strip_times();
    par.strip_times();
    assert_eq!(render_all(&legacy), render_all(&par));
}

#[test]
fn oversubscribed_jobs_are_harmless() {
    // More workers than instances: some shards are empty.
    let config = ExperimentConfig {
        max_iterations: Some(1),
        only_benchmarks: vec!["tlc".to_owned()],
        ..test_config()
    };
    let mut one = run_experiment_jobs(&config, 1);
    let mut many = run_experiment_jobs(&config, 32);
    one.strip_times();
    many.strip_times();
    assert_eq!(render_all(&one), render_all(&many));
}
