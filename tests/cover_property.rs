//! Cross-crate soundness: every heuristic must return a valid cover on the
//! *real* instance stream produced by symbolic reachability of the
//! benchmark machines (not just synthetic leaf-spec instances).

use bddmin_core::{lower_bound, minimize_all, Heuristic, Isf};
use bddmin_fsm::{generators, product_circuit, Reachability, SymbolicFsm};

/// Collects the frontier-choice instances of a short traversal and checks
/// every heuristic on them.
#[test]
fn all_heuristics_cover_fsm_instances() {
    for name in ["tlc", "minmax5", "s386"] {
        let bench = generators::benchmark_suite()
            .into_iter()
            .find(|b| b.paper_name == name)
            .expect("benchmark exists");
        let product = product_circuit(&bench.circuit, &bench.circuit.clone());
        let mut fsm = SymbolicFsm::new(&product);
        let mut checked = 0usize;
        let _ = Reachability::new()
            .max_iterations(5)
            .with_hook(|bdd, isf| {
                for h in Heuristic::ALL {
                    let g = h.minimize(bdd, isf);
                    assert!(isf.is_cover(bdd, g), "{h} returned a non-cover on {name}");
                }
                checked += 1;
                bdd.constrain(isf.f, isf.c)
            })
            .run(&mut fsm);
        assert!(checked > 0, "{name} produced no instances");
    }
}

/// The per-latch image instances `[δᵢ, S]` are also covered soundly, and
/// `constrain`'s result on them preserves the image (cross-checked against
/// the relation-based image).
#[test]
fn image_instances_covered_and_image_preserved() {
    let bench = generators::benchmark_suite()
        .into_iter()
        .find(|b| b.paper_name == "tlc")
        .unwrap();
    let mut fsm = SymbolicFsm::new(&bench.circuit);
    let init = fsm.initial_states();
    let mut set = init;
    for _ in 0..3 {
        let constrained = fsm.constrained_next_fns(set);
        // Soundness of the instances as EBM problems.
        let next_fns = fsm.next_fns().to_vec();
        for (i, &delta) in next_fns.iter().enumerate() {
            let isf = Isf::new(delta, set);
            assert!(isf.is_cover(fsm.bdd_mut(), constrained[i]));
            for h in [Heuristic::Restrict, Heuristic::OsmBt, Heuristic::TsmTd] {
                let g = h.minimize(fsm.bdd_mut(), isf);
                assert!(isf.is_cover(fsm.bdd_mut(), g), "{h}");
            }
        }
        // Image preservation (the constrain special property).
        let by_range = fsm.image_of_constrained(&constrained);
        let by_relation = fsm.image(set);
        assert_eq!(by_range, by_relation);
        let bdd = fsm.bdd_mut();
        set = bdd.or(set, by_range);
    }
}

/// The lower bound is below every heuristic on real instances.
#[test]
fn lower_bound_sound_on_fsm_instances() {
    let bench = generators::benchmark_suite()
        .into_iter()
        .find(|b| b.paper_name == "minmax5")
        .unwrap();
    let product = product_circuit(&bench.circuit, &bench.circuit.clone());
    let mut fsm = SymbolicFsm::new(&product);
    let _ = Reachability::new()
        .max_iterations(4)
        .with_hook(|bdd, isf| {
            if !bdd.is_cube(isf.c) {
                let lb = lower_bound(bdd, isf, 200);
                let (_, min) = minimize_all(bdd, isf);
                assert!(lb.bound <= bdd.size(min));
            }
            bdd.constrain(isf.f, isf.c)
        })
        .run(&mut fsm);
}

/// The traversal fixpoint is independent of which cover the hook returns —
/// the whole justification for minimizing with don't cares.
#[test]
fn fixpoint_invariant_under_heuristic_choice() {
    let bench = generators::benchmark_suite()
        .into_iter()
        .find(|b| b.paper_name == "s386")
        .unwrap();
    let mut counts = Vec::new();
    for h in [
        Heuristic::Constrain,
        Heuristic::Restrict,
        Heuristic::OsmBt,
        Heuristic::TsmCp,
        Heuristic::OptLv,
        Heuristic::Scheduled,
    ] {
        let mut fsm = SymbolicFsm::new(&bench.circuit);
        let stats = Reachability::new()
            .with_hook(move |bdd, isf| h.minimize(bdd, isf))
            .run(&mut fsm);
        counts.push((h, fsm.count_states(stats.reached), stats.iterations));
    }
    let (h0, states0, iters0) = counts[0];
    for &(h, states, iters) in &counts[1..] {
        assert_eq!(states, states0, "{h} vs {h0}: different reached sets");
        assert_eq!(iters, iters0, "{h} vs {h0}: different depths");
    }
}
